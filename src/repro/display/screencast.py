"""Screencast baseline recorder (paper section 7, related work).

"Screencasting works by screen-scraping and taking screenshots of the
display many times a second.  It requires higher overhead and more storage
and bandwidth than DejaView's display recording, and the common approach of
also using lossy JPEG or MPEG encoding to compensate further increases
recording overhead, and decreases display quality."

This module implements that baseline so the comparison can be measured: a
:class:`ScreencastRecorder` is a driver sink that ignores the command
stream's structure and instead grabs the full framebuffer ``fps`` times a
second, optionally running each grab through a (zlib, stand-in for
MPEG-class) encoder.  The comparison benchmark pits it against
:class:`~repro.display.recorder.DisplayRecorder` on identical workloads.
"""

import struct
import zlib

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.serial import RecordWriter
from repro.display.framebuffer import Framebuffer

STREAM_KIND_SCREENCAST = 0x0D17
FRAME_TAG = 1


class ScreencastRecorder:
    """A driver sink that screen-scrapes at a fixed frame rate.

    Unlike the THINC-based recorder it cannot know *what* changed, so every
    grab serializes the entire screen; a cheap dirty check (framebuffer
    checksum) lets it skip frames when literally nothing changed — the best
    a screen-scraper can do.
    """

    def __init__(self, width, height, clock=None, costs=DEFAULT_COSTS,
                 fps=10, encode=True):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        self.fps = fps
        self.encode = encode
        self.framebuffer = Framebuffer(width, height)
        self._stream = RecordWriter(kind=STREAM_KIND_SCREENCAST)
        self._frame_interval_us = 1_000_000 // fps
        self._next_grab_us = self.clock.now_us
        self._last_checksum = None
        self.frames_captured = 0
        self.frames_skipped = 0
        self.raw_bytes = 0

    # ------------------------------------------------------------------ #
    # Sink interface: keep a mirror framebuffer current, grab on schedule.

    def handle_commands(self, commands, timestamp_us):
        for command in commands:
            command.apply(self.framebuffer)
        while timestamp_us >= self._next_grab_us:
            self._grab(self._next_grab_us)
            self._next_grab_us += self._frame_interval_us

    def _grab(self, timestamp_us):
        """Capture one full-screen frame."""
        # Screen-scraping reads the whole framebuffer every time.
        snapshot = self.framebuffer.snapshot_bytes()
        self.clock.advance_us(len(snapshot) * self.costs.memcpy_us_per_byte)
        checksum = self.framebuffer.checksum()
        if checksum == self._last_checksum:
            self.frames_skipped += 1
            return
        self._last_checksum = checksum
        self.raw_bytes += len(snapshot)
        if self.encode:
            payload = zlib.compress(snapshot, 1)
            self.clock.advance_us(self.costs.compress_us(len(snapshot)))
        else:
            payload = snapshot
        self._stream.write(
            FRAME_TAG, struct.pack("<Q", timestamp_us) + payload
        )
        self.clock.advance_us(
            len(payload) * self.costs.display_log_us_per_byte
        )
        self.frames_captured += 1

    # ------------------------------------------------------------------ #

    @property
    def stored_bytes(self):
        return self._stream.bytes_written

    def getvalue(self):
        return self._stream.getvalue()
