"""Timeline index file.

"DejaView indexes recorded command and screenshot data using a special
timeline file ... chronologically ordered, fixed-size entries of the time at
which a screenshot was taken, the file location in which its data was
stored, and the file location of the first display command that follows that
screenshot" (section 4.1).

Fixed-size entries make the file binary-searchable in O(log n) seeks, which
is what gives browsing its interactive latency (section 4.3).
"""

import struct
from dataclasses import dataclass

from repro.common.errors import DisplayError

_ENTRY = struct.Struct("<QQQ")


@dataclass(frozen=True)
class TimelineEntry:
    """One fixed-size timeline record."""

    time_us: int
    screenshot_offset: int
    command_offset: int

    def pack(self):
        return _ENTRY.pack(self.time_us, self.screenshot_offset, self.command_offset)

    @classmethod
    def unpack(cls, data, offset=0):
        time_us, shot_off, cmd_off = _ENTRY.unpack_from(data, offset)
        return cls(time_us, shot_off, cmd_off)


class TimelineIndex:
    """Chronologically ordered, binary-searchable screenshot index."""

    ENTRY_SIZE = _ENTRY.size

    def __init__(self):
        self._entries = []

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, i):
        return self._entries[i]

    def append(self, entry):
        """Append an entry; times must be non-decreasing (append-only log)."""
        if self._entries and entry.time_us < self._entries[-1].time_us:
            raise DisplayError(
                "timeline entries must be chronologically ordered: "
                "%d < %d" % (entry.time_us, self._entries[-1].time_us)
            )
        self._entries.append(entry)

    def locate(self, time_us):
        """Binary search: the entry with the maximum time <= ``time_us``.

        Returns ``(index, entry)`` or ``(None, None)`` when the requested
        time precedes the first screenshot.
        """
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._entries[mid].time_us <= time_us:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None, None
        return lo - 1, self._entries[lo - 1]

    def entries_between(self, start_us, end_us):
        """All entries with start_us <= time <= end_us (for fast-forward)."""
        return [e for e in self._entries if start_us <= e.time_us <= end_us]

    def truncate_tail(self, keep):
        """Drop the maximal suffix of entries failing ``keep(entry)``.

        Crash recovery: a torn write invalidates record offsets only at
        the *tail* of the streams, so dangling entries form a suffix.
        Returns the dropped entries (oldest first).
        """
        dropped = []
        while self._entries and not keep(self._entries[-1]):
            dropped.append(self._entries.pop())
        dropped.reverse()
        return dropped

    @property
    def first_time_us(self):
        return self._entries[0].time_us if self._entries else None

    @property
    def last_time_us(self):
        return self._entries[-1].time_us if self._entries else None

    # ------------------------------------------------------------------ #
    # Serialization (the on-disk "timeline file")

    def to_bytes(self):
        return b"".join(entry.pack() for entry in self._entries)

    @classmethod
    def from_bytes(cls, data, recover=False):
        """Decode a timeline file.  With ``recover=True`` a trailing
        partial entry (a torn write) is silently dropped instead of
        failing the whole file — fixed-size entries mean a crash can
        only tear the tail."""
        remainder = len(data) % _ENTRY.size
        if remainder:
            if not recover:
                raise DisplayError(
                    "timeline file size is not a multiple of entry size")
            data = data[: len(data) - remainder]
        index = cls()
        for offset in range(0, len(data), _ENTRY.size):
            index.append(TimelineEntry.unpack(data, offset))
        return index

    @property
    def nbytes(self):
        return len(self._entries) * _ENTRY.size
