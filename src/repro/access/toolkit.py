"""Accessible component trees.

Each application exposes a tree of accessible components ("the accessible
components of applications are stored as trees", section 4.2).  Querying a
component of the *real* tree is expensive — "only one component in the tree
can be accessed at any point in time, and accessing each component requires
continuous context switching between the daemon and the application" — which
this simulation charges through :meth:`AccessibleApp.query_node`.

Applications mutate their trees through the methods here, which emit
synchronous accessibility events to the desktop registry.
"""

from enum import Enum

from repro.common.errors import IndexError_
from repro.access.events import AccessibilityEvent, EventType


class Role(Enum):
    APPLICATION = "application"
    WINDOW = "window"
    DOCUMENT = "document"
    PARAGRAPH = "paragraph"
    TEXT = "text"
    LINK = "link"
    MENU_ITEM = "menu_item"
    BUTTON = "button"
    TERMINAL = "terminal"


class AccessibleNode:
    """One component of an application's accessibility tree."""

    __slots__ = ("node_id", "role", "name", "text", "children", "parent",
                 "properties")

    def __init__(self, node_id, role, name="", text="", properties=None):
        self.node_id = node_id
        self.role = role
        self.name = name
        self.text = text
        self.children = []
        self.parent = None
        self.properties = dict(properties or {})

    def subtree(self):
        """Depth-first iteration over this node and its descendants."""
        yield self
        for child in self.children:
            yield from child.subtree()

    def subtree_size(self):
        return sum(1 for _node in self.subtree())

    def __repr__(self):
        return "AccessibleNode(%d, %s, name=%r)" % (
            self.node_id,
            self.role.value,
            self.name,
        )


class AccessibleApp:
    """An application and its accessibility tree.

    Mutations emit synchronous events through the registry; applications
    without accessibility support (``accessible=False``, like the PDF
    viewers the paper mentions) emit nothing, and their text is simply
    invisible to the index — the limitation section 4.2 acknowledges.
    """

    def __init__(self, name, registry, clock, costs, accessible=True,
                 event_generation_cost_us=0.0):
        self.name = name
        self.registry = registry
        self.clock = clock
        self.costs = costs
        self.accessible = accessible
        #: Extra per-event cost of *generating* the accessibility
        #: information.  Most toolkits keep it up to date for free; Firefox
        #: "creates its accessibility information on demand", which is why
        #: the web benchmark's index-recording overhead is 99 % (section 6).
        self.event_generation_cost_us = float(event_generation_cost_us)
        self._next_node_id = 1
        root_id = self._alloc_id()
        self.root = AccessibleNode(root_id, Role.APPLICATION, name=name)
        self._nodes = {root_id: self.root}
        self.focused = False
        registry.register_app(self)

    def _alloc_id(self):
        node_id = (hash(self.name) & 0xFFFF) * 1_000_000 + self._next_node_id
        self._next_node_id += 1
        return node_id

    # ------------------------------------------------------------------ #
    # Real-tree access (expensive: context switch per component)

    def query_node(self, node_id):
        """Fetch one component the way an AT client would: one round-trip."""
        self.clock.advance_us(self.costs.ax_real_node_query_us)
        node = self._nodes.get(node_id)
        if node is None:
            raise IndexError_(
                "no accessible node %d in %s" % (node_id, self.name)
            )
        return node

    def traverse_real_tree(self):
        """Walk the whole tree at real-tree cost (what the daemon avoids
        doing per-event; it pays this once at startup)."""
        nodes = []
        for node in self.root.subtree():
            self.clock.advance_us(self.costs.ax_real_node_query_us)
            nodes.append(node)
        return nodes

    def node(self, node_id):
        """Zero-cost internal access (the app touching its own widgets)."""
        node = self._nodes.get(node_id)
        if node is None:
            raise IndexError_(
                "no accessible node %d in %s" % (node_id, self.name)
            )
        return node

    # ------------------------------------------------------------------ #
    # Mutations (emit synchronous events)

    def _emit(self, event_type, node_id, **detail):
        if not self.accessible:
            return
        if not self.registry.has_clients():
            # No AT client registered: the toolkit does not generate or
            # deliver accessibility events at all (zero overhead when
            # DejaView's indexing is disabled).
            return
        if self.event_generation_cost_us:
            self.clock.advance_us(self.event_generation_cost_us)
        self.registry.emit(
            AccessibilityEvent(
                type=event_type,
                app_name=self.name,
                node_id=node_id,
                timestamp_us=self.clock.now_us,
                detail=detail,
            )
        )

    def add_node(self, parent, role, name="", text="", properties=None):
        node = AccessibleNode(self._alloc_id(), role, name, text, properties)
        node.parent = parent
        parent.children.append(node)
        self._nodes[node.node_id] = node
        self._emit(
            EventType.NODE_ADDED,
            node.node_id,
            parent_id=parent.node_id,
            role=role.value,
            name=name,
            text=text,
            properties=dict(node.properties),
        )
        return node

    def remove_node(self, node):
        if node is self.root:
            raise IndexError_("cannot remove the application root")
        for descendant in list(node.subtree()):
            self._nodes.pop(descendant.node_id, None)
        node.parent.children.remove(node)
        self._emit(EventType.NODE_REMOVED, node.node_id)
        node.parent = None

    def set_text(self, node, text):
        old = node.text
        node.text = text
        self._emit(EventType.TEXT_CHANGED, node.node_id, old=old, new=text)

    def set_focus(self, focused=True):
        self.focused = focused
        self._emit(EventType.FOCUS_CHANGED, self.root.node_id, focused=focused)

    def select_text(self, node, selection):
        self._emit(EventType.TEXT_SELECTED, node.node_id, selection=selection)

    def press_key_combo(self, combo):
        self._emit(EventType.KEY_COMBO, self.root.node_id, combo=combo)
