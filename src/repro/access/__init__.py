"""Text capture via accessibility interfaces (paper section 4.2).

DejaView extracts on-screen text not from pixels (OCR was "slow and
inaccurate") but from the accessibility infrastructure that GUI toolkits
already expose for screen readers.  This package simulates that
infrastructure and implements the paper's capture daemon:

* :mod:`repro.access.toolkit` -- accessible component trees (roles, names,
  text, states) owned by applications, with the expensive query semantics
  of real AT interfaces (every component access round-trips to the app).
* :mod:`repro.access.events` -- the synchronous accessibility event types
  (text changed, node added/removed, focus, selection, key combo).
* :mod:`repro.access.registry` -- the desktop-wide registry applications
  register with and the daemon subscribes to.
* :mod:`repro.access.daemon` -- the indexing daemon: a mirror tree plus a
  hash table mapping accessible components to mirror nodes, so event
  processing never traverses the real tree (section 4.2's key
  optimization); feeds all text with context into the temporal index, and
  implements explicit annotations (select text, press the combo key, and
  the selection is indexed with an annotation attribute).
"""

from repro.access.daemon import IndexingDaemon
from repro.access.events import AccessibilityEvent, EventType
from repro.access.registry import DesktopRegistry
from repro.access.toolkit import AccessibleApp, AccessibleNode, Role

__all__ = [
    "Role",
    "AccessibleNode",
    "AccessibleApp",
    "AccessibilityEvent",
    "EventType",
    "DesktopRegistry",
    "IndexingDaemon",
]
