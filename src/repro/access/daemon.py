"""The indexing daemon (paper section 4.2).

"DejaView uses a daemon to collect the text on the desktop and index it in
a database."  Two properties of the accessibility layer make a naive daemon
ruinously slow: events are synchronous (the app blocks until the handler
returns), and querying real accessible trees costs a context-switch
round-trip per component ("the latter can take a couple seconds and destroy
interactive responsiveness").

The daemon therefore keeps **a mirror tree** — "a number of data structures
that exactly mirror the accessible state of the desktop" — plus **a hash
table mapping accessible components to nodes in the mirror tree**, so each
event is serviced by an O(1) lookup and a local update instead of a
traversal of the real tree.  ``use_mirror_tree=False`` switches the daemon
to the naive strategy (re-querying the real tree on every event) for the
ablation benchmark.
"""

from repro.common.errors import IndexError_
from repro.common.telemetry import resolve_telemetry
from repro.access.events import EventType
from repro.access.toolkit import Role


class MirrorNode:
    """The daemon's local replica of one accessible component."""

    __slots__ = ("node_id", "app_name", "role", "name", "text", "parent",
                 "children", "properties")

    def __init__(self, node_id, app_name, role, name="", text="",
                 parent=None, properties=None):
        self.node_id = node_id
        self.app_name = app_name
        self.role = role
        self.name = name
        self.text = text
        self.parent = parent
        self.children = []
        self.properties = dict(properties or {})

    def subtree(self):
        yield self
        for child in self.children:
            yield from child.subtree()

    def window_title(self):
        """Name of the nearest enclosing window (context for the index)."""
        node = self
        while node is not None:
            if node.role in (Role.WINDOW, Role.APPLICATION):
                return node.name
            node = node.parent
        return ""


class IndexingDaemon:
    """Mirrors the desktop's accessible state and feeds the text index."""

    ANNOTATE_COMBO = "ctrl+alt+a"

    def __init__(self, registry, database, use_mirror_tree=True,
                 telemetry=None):
        self.registry = registry
        self.database = database
        self.clock = registry.clock
        self.costs = registry.costs
        self.use_mirror_tree = use_mirror_tree
        self.telemetry = resolve_telemetry(telemetry)
        metrics = self.telemetry.metrics
        self._m_events = metrics.counter("daemon.events_processed")
        self._m_hits = metrics.counter("daemon.mirror_hits")
        self._m_misses = metrics.counter("daemon.mirror_misses")
        self._m_retraversals = metrics.counter("daemon.retraversals")
        self._g_mirror = metrics.gauge("daemon.mirror_size")
        self._mirror = {}  # node_id -> MirrorNode (the hash table)
        self._roots = {}  # app name -> MirrorNode
        self._focused_app = None
        self._last_selection = None  # (node_id, selected text)
        self.events_processed = 0
        self._subscription = registry.subscribe(self._on_event)
        self._app_subscription = registry.subscribe_app_registration(
            self._on_app_registered
        )
        self._startup_scan()

    # ------------------------------------------------------------------ #
    # Startup: one full (expensive) traversal of every real tree

    def _startup_scan(self):
        """"At startup, the daemon traverses all the applications, and
        builds its own mirror tree.""" ""
        for app in self.registry.apps():
            if not app.accessible:
                continue
            self._adopt_app(app)

    def _on_app_registered(self, app):
        """An application launched after the daemon started: adopt it."""
        if app.accessible:
            self._adopt_app(app)

    def _adopt_app(self, app):
        for node in app.traverse_real_tree():  # charged at real-tree cost
            parent = self._mirror.get(node.parent.node_id) if node.parent else None
            self._add_mirror_node(
                app.name,
                node.node_id,
                node.role,
                node.name,
                node.text,
                parent,
                node.properties,
            )

    def _add_mirror_node(self, app_name, node_id, role, name, text, parent,
                         properties):
        mirror = MirrorNode(node_id, app_name, role, name, text, parent,
                            properties)
        if parent is not None:
            parent.children.append(mirror)
        else:
            self._roots[app_name] = mirror
        self._mirror[node_id] = mirror
        self._g_mirror.set(len(self._mirror))
        self.clock.advance_us(self.costs.ax_mirror_node_us)
        if text:
            self._open_text(mirror)
        return mirror

    # ------------------------------------------------------------------ #
    # Event handling (synchronous: cost lands on the emitting app)

    def _on_event(self, event):
        self.events_processed += 1
        self._m_events.inc()
        if not self.use_mirror_tree:
            self._handle_event_naive(event)
            return
        handler = {
            EventType.NODE_ADDED: self._on_node_added,
            EventType.NODE_REMOVED: self._on_node_removed,
            EventType.TEXT_CHANGED: self._on_text_changed,
            EventType.FOCUS_CHANGED: self._on_focus_changed,
            EventType.TEXT_SELECTED: self._on_text_selected,
            EventType.KEY_COMBO: self._on_key_combo,
        }[event.type]
        handler(event)

    def _on_node_added(self, event):
        detail = event.detail
        parent = self._mirror.get(detail["parent_id"])
        if parent is None:
            raise IndexError_(
                "event references unknown parent %d" % detail["parent_id"]
            )
        self._add_mirror_node(
            event.app_name,
            event.node_id,
            Role(detail["role"]),
            detail["name"],
            detail["text"],
            parent,
            detail.get("properties"),
        )

    def _on_node_removed(self, event):
        mirror = self._lookup(event.node_id)
        for node in mirror.subtree():
            self.database.close_occurrence(node.node_id)
            self._mirror.pop(node.node_id, None)
            self.clock.advance_us(self.costs.ax_mirror_node_us)
        self._g_mirror.set(len(self._mirror))
        if mirror.parent is not None:
            mirror.parent.children.remove(mirror)

    def _on_text_changed(self, event):
        mirror = self._lookup(event.node_id)
        mirror.text = event.detail["new"]
        if mirror.text:
            self._open_text(mirror)
        else:
            self.database.close_occurrence(mirror.node_id)

    def _on_focus_changed(self, event):
        focused = event.detail["focused"]
        previous = self._focused_app
        if focused:
            self._focused_app = event.app_name
        elif self._focused_app == event.app_name:
            self._focused_app = None
        if self._focused_app == previous:
            # No transition (e.g. a repeated focus grab by the already
            # focused application): the indexed context is unchanged, so
            # skip the subtree replay instead of churning the database
            # with identical reopens.
            return
        # Reopen the app's visible text so occurrences record the focus
        # transition (focus is part of the indexed temporal context).
        root = self._roots.get(event.app_name)
        if root is None:
            return
        for node in root.subtree():
            self.clock.advance_us(self.costs.ax_mirror_node_us)
            if node.text:
                self._open_text(node)

    def _on_text_selected(self, event):
        self._last_selection = (event.node_id, event.detail["selection"])

    def _on_key_combo(self, event):
        if event.detail.get("combo") != self.ANNOTATE_COMBO:
            return
        if self._last_selection is None:
            return
        node_id, selection = self._last_selection
        if node_id in self._mirror:
            self.database.annotate_node(node_id, annotation_text=selection)
        self._last_selection = None

    # ------------------------------------------------------------------ #
    # Naive strategy (ablation): re-traverse the real tree per event

    def _handle_event_naive(self, event):
        self._m_retraversals.inc()
        app = self.registry.app(event.app_name)
        if event.type is EventType.FOCUS_CHANGED:
            if event.detail["focused"]:
                self._focused_app = event.app_name
        elif event.type is EventType.TEXT_SELECTED:
            self._last_selection = (event.node_id, event.detail["selection"])
        elif event.type is EventType.KEY_COMBO:
            self._on_key_combo(event)
            return
        # The expensive part: walk the whole real tree to find the state.
        seen = set()
        for node in app.traverse_real_tree():
            seen.add(node.node_id)
            if node.text:
                self.database.open_occurrence(
                    node.node_id,
                    node.text,
                    app=event.app_name,
                    window=node.name if node.role is Role.WINDOW else "",
                    focused=self._focused_app == event.app_name,
                    properties=node.properties,
                )
        if event.type is EventType.NODE_REMOVED and event.node_id not in seen:
            self.database.close_occurrence(event.node_id)

    # ------------------------------------------------------------------ #

    def _lookup(self, node_id):
        """The O(1) hash-table lookup that replaces tree traversal."""
        self.clock.advance_us(self.costs.ax_mirror_node_us)
        mirror = self._mirror.get(node_id)
        if mirror is None:
            self._m_misses.inc()
            raise IndexError_("no mirror node for component %d" % node_id)
        self._m_hits.inc()
        return mirror

    def _open_text(self, mirror):
        self.database.open_occurrence(
            mirror.node_id,
            mirror.text,
            app=mirror.app_name,
            window=mirror.window_title(),
            focused=self._focused_app == mirror.app_name,
            properties=mirror.properties,
        )

    # ------------------------------------------------------------------ #
    # Introspection

    def mirror_size(self):
        return len(self._mirror)

    def mirror_root(self, app_name):
        return self._roots.get(app_name)

    def shutdown(self):
        self._subscription.cancel()
        self._app_subscription.cancel()
