"""Desktop-wide accessibility registry.

The equivalent of AT-SPI's registry daemon: applications register
themselves; AT clients (DejaView's indexing daemon, screen readers) ask to
"deliver events when new text is displayed or existing text on the screen
changes" (section 4.2).  Delivery is synchronous through the shared
:class:`~repro.common.events.EventBus`.
"""

from repro.common.costs import DEFAULT_COSTS
from repro.common.events import EventBus
from repro.access.events import TOPIC


class DesktopRegistry:
    """Registry of accessible applications plus the event channel."""

    def __init__(self, clock, costs=DEFAULT_COSTS, bus=None):
        self.clock = clock
        self.costs = costs
        self.bus = bus if bus is not None else EventBus()
        self._apps = {}

    APP_TOPIC = "accessibility.apps"

    def register_app(self, app):
        if app.name in self._apps:
            raise ValueError("application %r already registered" % app.name)
        self._apps[app.name] = app
        # AT clients already running adopt the newcomer (they registered
        # "at startup" for apps that existed then; later launches arrive
        # through this notification).
        self.bus.publish(self.APP_TOPIC, app)

    def subscribe_app_registration(self, handler):
        return self.bus.subscribe(self.APP_TOPIC, handler)

    def unregister_app(self, name):
        self._apps.pop(name, None)

    def apps(self):
        """All registered applications, in registration order."""
        return list(self._apps.values())

    def app(self, name):
        return self._apps[name]

    def focused_app(self):
        for app in self._apps.values():
            if app.focused:
                return app
        return None

    def subscribe(self, handler):
        """Register an AT client for accessibility events."""
        return self.bus.subscribe(TOPIC, handler)

    def has_clients(self):
        """Is any AT client (daemon, screen reader) listening?"""
        return self.bus.subscriber_count(TOPIC) > 0

    def emit(self, event):
        """Deliver an event synchronously to all AT clients.

        The dispatch cost is charged to the emitting application — this is
        exactly the overhead Figure 2's "index recording" bars measure.
        """
        self.clock.advance_us(self.costs.ax_event_dispatch_us)
        return self.bus.publish(TOPIC, event)
