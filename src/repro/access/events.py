"""Accessibility event types.

Events are delivered *synchronously*: "applications block until event
delivery is finished" (section 4.2).  The daemon therefore keeps its
handlers O(1) via the mirror tree; every microsecond spent in a handler is
charged to the emitting application's timeline.
"""

from dataclasses import dataclass, field
from enum import Enum


class EventType(Enum):
    NODE_ADDED = "node_added"
    NODE_REMOVED = "node_removed"
    TEXT_CHANGED = "text_changed"
    FOCUS_CHANGED = "focus_changed"
    TEXT_SELECTED = "text_selected"
    KEY_COMBO = "key_combo"


@dataclass
class AccessibilityEvent:
    """One event emitted by an application's accessibility layer."""

    type: EventType
    app_name: str
    node_id: int
    timestamp_us: int
    #: Event-specific payload: new text, selection contents, combo name...
    detail: dict = field(default_factory=dict)


TOPIC = "accessibility"
"""Event-bus topic accessibility events travel on."""
