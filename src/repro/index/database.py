"""Temporal text database.

Stores *occurrences*: a run of text visible on screen from ``start_us``
until ``end_us`` (open while still visible), with the contextual
information the accessibility layer provides — "the name and type of the
application that generated the text, window focus, and special properties
about the text (e.g. if it is a menu item or an HTML link)" (section 4.2).

"By indexing the full state of the desktop's text over time, DejaView is
able to access the temporal relationships and state transitions of all
displayed text as database queries" — occurrences capture exactly those
state transitions: a node's text change closes one occurrence and opens the
next.

An inverted index maps each token to the occurrences containing it; query
evaluation in :mod:`repro.index.search` converts postings to visibility
intervals and applies interval algebra.

Posting lists are **partitioned into fixed-width time epochs** so that a
time-bounded query only scans — and is only charged virtual cost for —
the buckets overlapping its window.  An occurrence is registered in the
bucket of its ``start_us`` when it opens, and back-filled into every
further bucket its visibility interval covers when it closes; occurrences
still open are tracked separately per token (they extend to "now" and
therefore overlap any window that begins before they end).  The result is
that windowed retrieval touches a superset of the occurrences overlapping
the window and *none* of the history outside it: query cost scales with
the window, not with the length of the recording.

Two secondary structures support the rest of the query path:

* a **per-node occurrence index**, so ``occurrences_for_node`` is a
  direct lookup instead of a full-table scan;
* a monotonically increasing **mutation epoch**, bumped by every write
  (open, close, annotate), which the search engine's interval cache uses
  for invalidation.
"""

from dataclasses import dataclass

from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import IndexError_
from repro.common.faults import InjectedFault, resolve_faults
from repro.common.telemetry import resolve_telemetry
from repro.common.units import seconds
from repro.index.tokenizer import tokenize

FP_INGEST_POST_OPEN = "index.ingest.post_open"
FP_CLOSE_MID_BACKFILL = "index.close.mid_backfill"

DEFAULT_EPOCH_WIDTH_US = seconds(60)
"""Default posting-bucket width.  One minute keeps bucket counts small for
the benchmark scenarios (minutes of simulated time) while still letting a
"last few minutes of a long day" query skip almost all of the history."""


@dataclass
class Occurrence:
    """One visibility span of a piece of on-screen text."""

    occ_id: int
    node_id: int
    app: str
    window: str
    text: str
    tokens: frozenset
    focused: bool
    properties: dict
    start_us: int
    end_us: int = None  # None while the text is still on screen
    committed: bool = True
    """False only while the occurrence's postings are being inserted; a
    crash mid-insert leaves it False, and :meth:`TemporalTextDatabase.
    recover` drops such partially indexed occurrences."""

    def interval(self, now_us):
        """The occurrence's visibility interval, closing open ones at
        ``now_us`` (text still visible counts up to the present)."""
        end = self.end_us if self.end_us is not None else now_us
        return (self.start_us, max(end, self.start_us + 1))

    @property
    def is_annotation(self):
        return bool(self.properties.get("annotation"))


class _TokenPostings:
    """One token's posting list, partitioned into time-epoch buckets.

    ``order`` holds every occurrence id exactly once in insertion order
    (ascending, since ids are allocated monotonically) — the full-history
    scan path.  ``buckets`` maps epoch number to the ids visible during
    that epoch (start bucket at open; the remaining covered buckets are
    back-filled at close).  ``open_ids`` are occurrences not yet closed:
    they only have their start bucket, but extend to "now", so windowed
    scans consider them separately.
    """

    __slots__ = ("order", "buckets", "open_ids")

    def __init__(self):
        self.order = []
        self.buckets = {}
        self.open_ids = []


class TemporalTextDatabase:
    """Occurrences + epoch-partitioned inverted token index."""

    def __init__(self, clock, costs=DEFAULT_COSTS, telemetry=None,
                 epoch_width_us=DEFAULT_EPOCH_WIDTH_US, faults=None):
        if epoch_width_us <= 0:
            raise ValueError("epoch width must be positive")
        self.clock = clock
        self.costs = costs
        self.epoch_width_us = int(epoch_width_us)
        self.telemetry = resolve_telemetry(telemetry)
        self.faults = resolve_faults(faults)
        metrics = self.telemetry.metrics
        self._m_inserts = metrics.counter("index.inserts")
        self._m_closes = metrics.counter("index.closes")
        self._m_postings_scanned = metrics.counter("index.postings_scanned")
        self._m_postings_pruned = metrics.counter("index.postings_pruned")
        self._m_buckets_skipped = metrics.counter("index.buckets_skipped")
        self._m_noop_reopens = metrics.counter("index.noop_reopens")
        self._m_tokens = metrics.histogram("index.tokens_per_insert")
        self._occurrences = {}  # occ id -> Occurrence
        self._next_occ_id = 1
        self._open_by_node = {}  # node id -> occ id
        self._index = {}  # token -> _TokenPostings
        self._by_node = {}  # node id -> [occ ids] (insertion order)
        self.insert_count = 0
        self.mutation_epoch = 0
        """Bumped by every write (open / close / annotate); the search
        engine's interval cache is valid only while this is unchanged."""

    # ------------------------------------------------------------------ #
    # Epoch arithmetic

    def _epoch(self, time_us):
        return max(int(time_us), 0) // self.epoch_width_us

    def window_key(self, window):
        """The ``(first_epoch, last_epoch)`` bucket range a window maps
        to — the cache-key component for windowed retrieval (two windows
        with the same key scan exactly the same buckets).  ``None`` for
        a full-history scan; ``last_epoch`` is None for an open-ended
        window."""
        if window is None:
            return None
        start_us, end_us = window
        first = self._epoch(start_us)
        last = None if end_us is None else self._epoch(max(end_us - 1, 0))
        return (first, last)

    # ------------------------------------------------------------------ #
    # Ingest (called by the indexing daemon)

    def open_occurrence(self, node_id, text, app, window="", focused=False,
                        properties=None):
        """Record that ``text`` became visible on ``node_id`` now.

        Any occurrence currently open for the node is closed first (a text
        *change* is a state transition: old text disappears, new appears).
        Re-signalling identical state is **not** a transition: if the
        node's open occurrence already has the same text and context, it is
        left open untouched (the accessibility layer replays subtrees on
        focus events, and the naive ablation daemon replays whole trees —
        closing and reopening an identical occurrence would split its
        visibility interval into adjacent pieces that interval algebra
        merges right back, at real ingest cost for nothing).
        Returns the occurrence (new or still-open), or None for token-free
        text.
        """
        properties = dict(properties or {})
        open_id = self._open_by_node.get(node_id)
        if open_id is not None:
            occ = self._occurrences[open_id]
            if (occ.text == text and occ.app == app
                    and occ.window == window and occ.focused == focused
                    and occ.properties == properties):
                self._m_noop_reopens.inc()
                return occ
        self.close_occurrence(node_id)
        tokens = frozenset(tokenize(text))
        if not tokens:
            return None
        occ = Occurrence(
            occ_id=self._next_occ_id,
            node_id=node_id,
            app=app,
            window=window,
            text=text,
            tokens=tokens,
            focused=focused,
            properties=properties,
            start_us=self.clock.now_us,
            committed=False,
        )
        self._next_occ_id += 1
        self._occurrences[occ.occ_id] = occ
        self._open_by_node[node_id] = occ.occ_id
        self._by_node.setdefault(node_id, []).append(occ.occ_id)
        start_epoch = self._epoch(occ.start_us)
        ordered = sorted(tokens)
        fire_at = len(ordered) // 2
        try:
            for position, token in enumerate(ordered):
                if position == fire_at:
                    # A crash here leaves a partially indexed occurrence
                    # with committed=False — recover() drops it.  A
                    # transient fault is rolled back below instead.
                    self.faults.check(FP_INGEST_POST_OPEN)
                postings = self._index.get(token)
                if postings is None:
                    postings = self._index[token] = _TokenPostings()
                postings.order.append(occ.occ_id)
                postings.buckets.setdefault(start_epoch, []).append(occ.occ_id)
                postings.open_ids.append(occ.occ_id)
        except InjectedFault:
            # Transient I/O error: roll the insert back entirely — it
            # never happened, and the caller may retry.
            for token in ordered:
                postings = self._index.get(token)
                if postings is None:
                    continue
                if postings.order and postings.order[-1] == occ.occ_id:
                    postings.order.pop()
                    postings.buckets[start_epoch].pop()
                    postings.open_ids.pop()
            del self._occurrences[occ.occ_id]
            del self._open_by_node[node_id]
            self._by_node[node_id].remove(occ.occ_id)
            self._next_occ_id = occ.occ_id
            raise
        occ.committed = True
        self.insert_count += 1
        self.mutation_epoch += 1
        self._m_inserts.inc()
        self._m_tokens.observe(len(tokens))
        self.clock.advance_us(len(tokens) * self.costs.index_token_us)
        return occ

    def close_occurrence(self, node_id):
        """Record that the node's text left the screen now."""
        occ_id = self._open_by_node.pop(node_id, None)
        if occ_id is None:
            return None
        occ = self._occurrences[occ_id]
        occ.end_us = self.clock.now_us
        # Back-fill the epochs the occurrence's interval covers beyond its
        # start bucket, so windowed scans over any part of its visibility
        # still find it.
        first_epoch = self._epoch(occ.start_us)
        effective_end = max(occ.end_us, occ.start_us + 1)
        last_epoch = self._epoch(effective_end - 1)
        ordered = sorted(occ.tokens)
        fire_at = len(ordered) // 2
        backfilled = []
        try:
            for position, token in enumerate(ordered):
                if position == fire_at:
                    # A crash here leaves the close half-applied: end_us
                    # set, some tokens back-filled, the rest still open —
                    # recover() rebuilds the index and finishes the job.
                    # A transient fault is rolled back below instead.
                    self.faults.check(FP_CLOSE_MID_BACKFILL)
                postings = self._index[token]
                postings.open_ids.remove(occ_id)
                for epoch in range(first_epoch + 1, last_epoch + 1):
                    postings.buckets.setdefault(epoch, []).append(occ_id)
                backfilled.append(token)
        except InjectedFault:
            # Transient I/O error: undo the partial close; the occurrence
            # stays open and the daemon will close it again later.
            for token in backfilled:
                postings = self._index[token]
                postings.open_ids.append(occ_id)
                for epoch in range(first_epoch + 1, last_epoch + 1):
                    postings.buckets[epoch].remove(occ_id)
            occ.end_us = None
            self._open_by_node[node_id] = occ_id
            raise
        self.mutation_epoch += 1
        self._m_closes.inc()
        self.clock.advance_us(len(occ.tokens) * self.costs.index_token_us)
        return occ

    def annotate_node(self, node_id, annotation_text=None):
        """Mark the node's current occurrence with the annotation
        attribute (section 4.4's explicit annotation mechanism)."""
        occ_id = self._open_by_node.get(node_id)
        if occ_id is None:
            raise IndexError_("no visible text on node %d to annotate" % node_id)
        occ = self._occurrences[occ_id]
        occ.properties["annotation"] = True
        if annotation_text:
            occ.properties["annotation_text"] = annotation_text
        self.mutation_epoch += 1
        return occ

    # ------------------------------------------------------------------ #
    # Crash recovery

    def recover(self):
        """Post-crash repair of the index.

        The occurrence table is the table of record (an occurrence is
        fully described by its own row); the inverted index is derived
        data.  Recovery drops occurrences left uncommitted by a crash
        mid-insert, then rebuilds the inverted index from the surviving
        table — which also finishes any back-fill a crash mid-close left
        half-applied.  Bumps the mutation epoch so interval caches
        invalidate.
        """
        dropped = []
        for occ_id, occ in list(self._occurrences.items()):
            if occ.committed:
                continue
            del self._occurrences[occ_id]
            if self._open_by_node.get(occ.node_id) == occ_id:
                del self._open_by_node[occ.node_id]
            node_ids = self._by_node.get(occ.node_id)
            if node_ids and occ_id in node_ids:
                node_ids.remove(occ_id)
            dropped.append(occ_id)
        self._index = {}
        postings_rebuilt = 0
        for occ_id in sorted(self._occurrences):
            occ = self._occurrences[occ_id]
            first_epoch = self._epoch(occ.start_us)
            if occ.end_us is None:
                last_epoch = first_epoch
            else:
                effective_end = max(occ.end_us, occ.start_us + 1)
                last_epoch = self._epoch(effective_end - 1)
            for token in sorted(occ.tokens):
                postings = self._index.get(token)
                if postings is None:
                    postings = self._index[token] = _TokenPostings()
                postings.order.append(occ_id)
                for epoch in range(first_epoch, last_epoch + 1):
                    postings.buckets.setdefault(epoch, []).append(occ_id)
                if occ.end_us is None:
                    postings.open_ids.append(occ_id)
                postings_rebuilt += 1
        self.mutation_epoch += 1
        self.clock.advance_us(postings_rebuilt * self.costs.index_token_us)
        return {
            "uncommitted_dropped": dropped,
            "postings_rebuilt": postings_rebuilt,
        }

    # ------------------------------------------------------------------ #
    # Lookup (called by the search engine)

    def posting_count(self, token):
        """Total postings for ``token`` — O(1) planner metadata (a
        maintained length, not a scan), so selectivity ordering is free."""
        postings = self._index.get(token)
        return len(postings.order) if postings is not None else 0

    def postings_for(self, token, window=None):
        """Occurrences containing ``token``, as an immutable tuple.

        With ``window=(start_us, end_us)`` (``end_us`` may be None for
        open-ended), only the epoch buckets overlapping the window are
        scanned and charged; everything outside is pruned without cost.
        The windowed result is the set of occurrences whose visibility
        interval *could* overlap the window (bucket-granular, so a small
        superset) in insertion order — callers clamp intervals exactly.
        """
        self.clock.advance_us(self.costs.index_query_term_us)
        postings = self._index.get(token)
        if postings is None:
            return ()
        if window is None:
            occ_ids = postings.order
            self._m_postings_scanned.inc(len(occ_ids))
            self.clock.advance_us(len(occ_ids) * self.costs.index_posting_us)
            return tuple(self._occurrences[i] for i in occ_ids)
        first_epoch, last_epoch = self.window_key(window)
        end_us = window[1]
        seen = set()
        scanned = 0
        buckets_visited = 0
        for epoch, occ_ids in postings.buckets.items():
            if epoch < first_epoch or (last_epoch is not None
                                       and epoch > last_epoch):
                continue
            buckets_visited += 1
            scanned += len(occ_ids)
            seen.update(occ_ids)
        # Still-open occurrences extend to "now": any that began before
        # the window's end overlaps it, even if its start bucket lies
        # before the scanned range.
        for occ_id in postings.open_ids:
            if occ_id not in seen:
                if end_us is None or self._occurrences[occ_id].start_us < end_us:
                    scanned += 1
                    seen.add(occ_id)
        self._m_postings_scanned.inc(scanned)
        self._m_postings_pruned.inc(len(postings.order) - len(seen))
        self._m_buckets_skipped.inc(len(postings.buckets) - buckets_visited)
        self.clock.advance_us(scanned * self.costs.index_posting_us)
        return tuple(self._occurrences[i] for i in sorted(seen))

    def occurrence(self, occ_id):
        return self._occurrences[occ_id]

    def occurrences_for_node(self, node_id):
        """All occurrences recorded for ``node_id``, via the per-node
        secondary index — charged per occurrence returned, never a
        full-table scan."""
        occ_ids = self._by_node.get(node_id, ())
        self.clock.advance_us(len(occ_ids) * self.costs.index_posting_us)
        return tuple(self._occurrences[i] for i in occ_ids)

    def open_occurrences(self):
        return [self._occurrences[i] for i in self._open_by_node.values()]

    def all_occurrences(self):
        return list(self._occurrences.values())

    def vocabulary(self):
        """All distinct indexed tokens."""
        return sorted(self._index)

    def approximate_bytes(self):
        """Approximate on-disk size of the index (storage accounting for
        the Figure 4 experiment): row overhead per occurrence plus text,
        plus one posting entry per (token, occurrence) pair."""
        row_overhead = 48
        posting_entry = 12
        total = 0
        for occ in self._occurrences.values():
            total += row_overhead + len(occ.text.encode("utf-8"))
            total += posting_entry * len(occ.tokens)
        return total

    def __len__(self):
        return len(self._occurrences)
