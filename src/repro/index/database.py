"""Temporal text database.

Stores *occurrences*: a run of text visible on screen from ``start_us``
until ``end_us`` (open while still visible), with the contextual
information the accessibility layer provides — "the name and type of the
application that generated the text, window focus, and special properties
about the text (e.g. if it is a menu item or an HTML link)" (section 4.2).

"By indexing the full state of the desktop's text over time, DejaView is
able to access the temporal relationships and state transitions of all
displayed text as database queries" — occurrences capture exactly those
state transitions: a node's text change closes one occurrence and opens the
next.

An inverted index maps each token to the occurrences containing it; query
evaluation in :mod:`repro.index.search` converts postings to visibility
intervals and applies interval algebra.
"""

from dataclasses import dataclass

from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import IndexError_
from repro.common.telemetry import resolve_telemetry
from repro.index.tokenizer import tokenize


@dataclass
class Occurrence:
    """One visibility span of a piece of on-screen text."""

    occ_id: int
    node_id: int
    app: str
    window: str
    text: str
    tokens: frozenset
    focused: bool
    properties: dict
    start_us: int
    end_us: int = None  # None while the text is still on screen

    def interval(self, now_us):
        """The occurrence's visibility interval, closing open ones at
        ``now_us`` (text still visible counts up to the present)."""
        end = self.end_us if self.end_us is not None else now_us
        return (self.start_us, max(end, self.start_us + 1))

    @property
    def is_annotation(self):
        return bool(self.properties.get("annotation"))


class TemporalTextDatabase:
    """Occurrences + inverted token index."""

    def __init__(self, clock, costs=DEFAULT_COSTS, telemetry=None):
        self.clock = clock
        self.costs = costs
        self.telemetry = resolve_telemetry(telemetry)
        metrics = self.telemetry.metrics
        self._m_inserts = metrics.counter("index.inserts")
        self._m_closes = metrics.counter("index.closes")
        self._m_postings_scanned = metrics.counter("index.postings_scanned")
        self._m_tokens = metrics.histogram("index.tokens_per_insert")
        self._occurrences = {}  # occ id -> Occurrence
        self._next_occ_id = 1
        self._open_by_node = {}  # node id -> occ id
        self._postings = {}  # token -> [occ ids]
        self.insert_count = 0

    # ------------------------------------------------------------------ #
    # Ingest (called by the indexing daemon)

    def open_occurrence(self, node_id, text, app, window="", focused=False,
                        properties=None):
        """Record that ``text`` became visible on ``node_id`` now.

        Any occurrence currently open for the node is closed first (a text
        *change* is a state transition: old text disappears, new appears).
        Returns the new occurrence, or None for token-free text.
        """
        self.close_occurrence(node_id)
        tokens = frozenset(tokenize(text))
        if not tokens:
            return None
        occ = Occurrence(
            occ_id=self._next_occ_id,
            node_id=node_id,
            app=app,
            window=window,
            text=text,
            tokens=tokens,
            focused=focused,
            properties=dict(properties or {}),
            start_us=self.clock.now_us,
        )
        self._next_occ_id += 1
        self._occurrences[occ.occ_id] = occ
        self._open_by_node[node_id] = occ.occ_id
        for token in tokens:
            self._postings.setdefault(token, []).append(occ.occ_id)
        self.insert_count += 1
        self._m_inserts.inc()
        self._m_tokens.observe(len(tokens))
        self.clock.advance_us(len(tokens) * self.costs.index_token_us)
        return occ

    def close_occurrence(self, node_id):
        """Record that the node's text left the screen now."""
        occ_id = self._open_by_node.pop(node_id, None)
        if occ_id is None:
            return None
        occ = self._occurrences[occ_id]
        occ.end_us = self.clock.now_us
        self._m_closes.inc()
        self.clock.advance_us(len(occ.tokens) * self.costs.index_token_us)
        return occ

    def annotate_node(self, node_id, annotation_text=None):
        """Mark the node's current occurrence with the annotation
        attribute (section 4.4's explicit annotation mechanism)."""
        occ_id = self._open_by_node.get(node_id)
        if occ_id is None:
            raise IndexError_("no visible text on node %d to annotate" % node_id)
        occ = self._occurrences[occ_id]
        occ.properties["annotation"] = True
        if annotation_text:
            occ.properties["annotation_text"] = annotation_text
        return occ

    # ------------------------------------------------------------------ #
    # Lookup (called by the search engine)

    def postings_for(self, token):
        """Occurrences containing ``token`` (charged per posting)."""
        self.clock.advance_us(self.costs.index_query_term_us)
        occ_ids = self._postings.get(token, ())
        self._m_postings_scanned.inc(len(occ_ids))
        self.clock.advance_us(len(occ_ids) * self.costs.index_posting_us)
        return [self._occurrences[occ_id] for occ_id in occ_ids]

    def occurrence(self, occ_id):
        return self._occurrences[occ_id]

    def occurrences_for_node(self, node_id):
        return [o for o in self._occurrences.values() if o.node_id == node_id]

    def open_occurrences(self):
        return [self._occurrences[i] for i in self._open_by_node.values()]

    def all_occurrences(self):
        return list(self._occurrences.values())

    def vocabulary(self):
        """All distinct indexed tokens."""
        return sorted(self._postings)

    def approximate_bytes(self):
        """Approximate on-disk size of the index (storage accounting for
        the Figure 4 experiment): row overhead per occurrence plus text,
        plus one posting entry per (token, occurrence) pair."""
        row_overhead = 48
        posting_entry = 12
        total = 0
        for occ in self._occurrences.values():
            total += row_overhead + len(occ.text.encode("utf-8"))
            total += posting_entry * len(occ.tokens)
        return total

    def __len__(self):
        return len(self._occurrences)
