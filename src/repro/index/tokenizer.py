"""Tokenization for the temporal text index.

Deliberately simple: lowercase, split on non-alphanumeric characters, drop
empties.  The paper's prototype delegated this to Tsearch2; nothing in the
evaluation depends on stemming or stop words, and a transparent tokenizer
keeps test expectations exact.
"""

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text):
    """Split ``text`` into lowercase alphanumeric tokens.

    >>> tokenize("Hello, World! x86-64")
    ['hello', 'world', 'x86', '64']
    """
    if not text:
        return []
    return _TOKEN_RE.findall(text.lower())


def token_set(text):
    """The distinct tokens of ``text`` as a frozenset."""
    return frozenset(tokenize(text))
