"""Time-interval algebra.

Temporal queries reduce to set operations over visibility intervals: a term
is "satisfied" during the union of its occurrences' intervals; an AND of
terms during the intersection; a NOT subtracts.  Intervals are half-open
``(start_us, end_us)`` tuples with ``start < end``; functions return
normalized (sorted, disjoint, non-empty) lists.
"""


def normalize(intervals):
    """Sort and merge overlapping/adjacent intervals; drop empties."""
    cleaned = [(s, e) for s, e in intervals if e > s]
    if not cleaned:
        return []
    cleaned.sort()
    merged = [cleaned[0]]
    for start, end in cleaned[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def union(*interval_lists):
    """Union of any number of interval lists."""
    combined = []
    for intervals in interval_lists:
        combined.extend(intervals)
    return normalize(combined)


def intersect_two(a, b):
    """Intersection of two normalized interval lists (merge scan)."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if start < end:
            out.append((start, end))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def intersect_many(interval_lists):
    """Intersection of a non-empty sequence of interval lists.

    Short-circuits: once the running intersection is empty, later lists
    are never touched (not even normalized) — the query planner feeds
    posting-derived lists in ascending-cost order to exploit this.
    """
    interval_lists = list(interval_lists)
    if not interval_lists:
        return []
    result = normalize(interval_lists[0])
    for intervals in interval_lists[1:]:
        if not result:
            break
        result = intersect_two(result, normalize(intervals))
    return result


def subtract(a, b):
    """Intervals of ``a`` not covered by ``b`` (both normalized)."""
    a = normalize(a)
    b = normalize(b)
    out = []
    j = 0
    for start, end in a:
        cursor = start
        while j < len(b) and b[j][1] <= cursor:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            b_start, b_end = b[k]
            if b_start > cursor:
                out.append((cursor, b_start))
            cursor = max(cursor, b_end)
            if cursor >= end:
                break
            k += 1
        if cursor < end:
            out.append((cursor, end))
    return normalize(out)


def clamp_intervals(intervals, start_us, end_us):
    """Restrict intervals to the window [start_us, end_us)."""
    return intersect_two(normalize(intervals), [(start_us, end_us)])


def total_duration(intervals):
    """Summed length of a normalized interval list."""
    return sum(end - start for start, end in normalize(intervals))


def contains_point(intervals, point):
    """Is ``point`` inside any interval?"""
    for start, end in intervals:
        if start <= point < end:
            return True
    return False


def overlaps_window(start_us, end_us, window_start_us, window_end_us):
    """Does the half-open interval ``[start_us, end_us)`` overlap the
    half-open window ``[window_start_us, window_end_us)``?

    ``window_end_us=None`` means an open-ended window (to "now"), the
    shape the query planner passes down when a query has a start bound
    but no end bound.
    """
    if window_end_us is not None and start_us >= window_end_us:
        return False
    return end_us > window_start_us


def span(intervals):
    """Bounding ``(start, end)`` of a normalized interval list, or None.

    The planner uses the span of an already-intersected partial result to
    tighten the retrieval window for the remaining terms.
    """
    if not intervals:
        return None
    return (intervals[0][0], intervals[-1][1])


def with_open_intervals(closed, open_starts, now_us):
    """Materialize a term's full interval set at query time.

    ``closed`` is the normalized interval list of occurrences that have
    ended; ``open_starts`` are the start times of occurrences still on
    screen, which count up to ``now_us`` (matching
    :meth:`~repro.index.database.Occurrence.interval` semantics).  Kept
    separate so the interval cache stays valid as ``now_us`` advances:
    only the open tail depends on the query instant.
    """
    if not open_starts:
        return closed
    return union(
        closed,
        [(start, max(now_us, start + 1)) for start in open_starts],
    )
