"""Search frontend (paper section 4.4).

Evaluation pipeline:

1. each clause's positive terms are resolved to occurrence postings,
   filtered by the clause's context constraints, and converted to
   visibility intervals (union per term across occurrences, intersection
   across ``all_of`` terms, union across ``any_of`` terms, subtraction of
   ``none_of``);
2. clause intervals are intersected across the query's clauses and clamped
   to the query's time range;
3. each maximal satisfied interval becomes a :class:`Substream` ("when the
   query is satisfied over a contiguous period of time, the result is
   displayed in the form of a first-last screenshot"); representative
   results are ranked by the requested criterion;
4. screenshots are rendered offscreen through the playback engine — "the
   operation is very similar to the visual playback ... with the
   difference being that it is done completely offscreen" — with the
   engine's LRU keyframe cache providing the section 4.4 speedup.

The read path is built to scale with *result size*, not history size:

* **Windowed retrieval** — a query's time range is threaded down into
  posting retrieval, so the database only scans (and only charges virtual
  cost for) the epoch buckets overlapping the window.
* **Interval cache** — each term's resolved postings and normalized
  intervals are cached per ``(token, context-signature, window key)``,
  invalidated by the database's mutation epoch.  Open occurrences are kept
  as bare start times and materialized against "now" per query, so cache
  entries stay valid as time advances.
* **Selectivity-ordered planning** — ``all_of`` terms are intersected
  rarest-first (shortest posting list first, using O(1) posting counts),
  so an empty intersection short-circuits before the expensive common
  terms are ever retrieved.
* **Single-pass evaluation** — the occurrences touched while building
  intervals are captured per clause, and snippets plus frequency scores
  are computed from that capture.  The seed implementation re-ran
  ``postings_for`` per result for both (O(results × tokens × postings),
  virtual cost re-charged each scan); now postings are paid for exactly
  once per query.
"""

from dataclasses import dataclass

from repro.common.telemetry import resolve_telemetry
from repro.index.intervals import (
    clamp_intervals,
    intersect_many,
    intersect_two,
    normalize,
    subtract,
    union,
    with_open_intervals,
)

ORDER_CHRONOLOGICAL = "time"
ORDER_PERSISTENCE = "persistence"
ORDER_FREQUENCY = "frequency"


@dataclass
class Substream:
    """A maximal contiguous period during which the query was satisfied.

    Substreams "behave like a typical recording, where all the PVR
    functionality is available, but restricted to that portion of time."
    """

    start_us: int
    end_us: int
    first_screenshot: object = None
    last_screenshot: object = None

    @property
    def duration_us(self):
        return self.end_us - self.start_us


@dataclass
class SearchResult:
    """One result: a moment in the record plus its presentation."""

    timestamp_us: int
    substream: Substream
    snippet: str
    score: float
    screenshot: object = None


class _TermEntry:
    """Cached resolution of one ``(token, context, window)`` triple.

    ``occs`` is the raw (context-unfiltered) posting tuple — snippets and
    frequency scores need it.  ``closed`` / ``open_starts`` are the
    context-filtered interval data: closed occurrences pre-normalized,
    open occurrences as start times to be materialized against the query's
    "now" (so the entry does not go stale merely because time passed).
    """

    __slots__ = ("mutation_epoch", "occs", "closed", "open_starts")

    def __init__(self, mutation_epoch, occs, closed, open_starts):
        self.mutation_epoch = mutation_epoch
        self.occs = occs
        self.closed = closed
        self.open_starts = open_starts

    def intervals(self, now_us):
        return with_open_intervals(self.closed, self.open_starts, now_us)


class _ClauseCapture:
    """Occurrences touched while evaluating one clause, kept for the
    result-construction pass (snippets, frequency scores).

    ``terms`` maps a positive term's position in the clause (``all_of``
    first, then ``any_of``) to its raw posting tuple — positional so the
    planner can evaluate out of order while snippets still scan terms in
    the user's order.  ``annotations`` holds the matched occurrences of a
    pure annotation clause.
    """

    __slots__ = ("terms", "annotations")

    def __init__(self):
        self.terms = {}
        self.annotations = None

    def ordered_postings(self):
        for position in sorted(self.terms):
            yield self.terms[position]


class SearchEngine:
    """Evaluates queries against the temporal database and renders
    results through the playback engine."""

    #: Interval-cache capacity (entries); oldest evicted first.
    CACHE_CAPACITY = 1024

    def __init__(self, database, playback=None, clock=None, telemetry=None):
        self.database = database
        self.playback = playback
        self.clock = clock if clock is not None else database.clock
        self.telemetry = resolve_telemetry(telemetry)
        metrics = self.telemetry.metrics
        self._m_queries = metrics.counter("index.queries")
        self._m_results = metrics.counter("index.results")
        self._m_query_us = metrics.histogram("index.query_us")
        self._m_render_us = metrics.histogram("index.render_us")
        self._m_cache_hits = metrics.counter("index.interval_cache_hits")
        self._m_cache_misses = metrics.counter("index.interval_cache_misses")
        self._m_shortcircuits = metrics.counter("index.planner_shortcircuits")
        self._interval_cache = {}

    # ------------------------------------------------------------------ #
    # Term resolution (cached)

    def _term_entry(self, token, clause, window, window_key):
        """Resolve one term to postings + intervals, through the cache."""
        key = (token, clause.app, clause.focused_only,
               clause.annotations_only, window_key)
        entry = self._interval_cache.get(key)
        if (entry is not None
                and entry.mutation_epoch == self.database.mutation_epoch):
            self._m_cache_hits.inc()
            return entry
        self._m_cache_misses.inc()
        occs = self.database.postings_for(token, window=window)
        closed = []
        open_starts = []
        for occ in occs:
            if clause.matches_context(occ):
                if occ.end_us is None:
                    open_starts.append(occ.start_us)
                else:
                    closed.append(
                        (occ.start_us, max(occ.end_us, occ.start_us + 1))
                    )
        entry = _TermEntry(self.database.mutation_epoch, occs,
                           normalize(closed), tuple(open_starts))
        if key in self._interval_cache:
            del self._interval_cache[key]  # stale: replace, keep recency
        elif len(self._interval_cache) >= self.CACHE_CAPACITY:
            self._interval_cache.pop(next(iter(self._interval_cache)))
        self._interval_cache[key] = entry
        return entry

    # ------------------------------------------------------------------ #
    # Interval evaluation

    @staticmethod
    def _query_window(query):
        """The retrieval window to thread down into the database, or None
        for an unbounded query (full-history scan)."""
        if query.start_us is None and query.end_us is None:
            return None
        start = query.start_us if query.start_us is not None else 0
        return (start, query.end_us)

    def _clause_intervals(self, clause, now_us, window, window_key):
        """Evaluate one clause; returns (intervals, capture)."""
        capture = _ClauseCapture()
        satisfied = None  # None = unconstrained (no positive part yet)
        if clause.all_of:
            # Selectivity-ordered plan: intersect rarest terms first so an
            # empty intersection short-circuits before the common (long
            # posting list) terms are retrieved.  Posting counts are O(1)
            # metadata, so planning itself is free.
            order = sorted(
                range(len(clause.all_of)),
                key=lambda i: (self.database.posting_count(clause.all_of[i]),
                               i),
            )
            if self.database.posting_count(clause.all_of[order[0]]) == 0:
                # A conjunct with no postings at all: nothing to retrieve.
                self._m_shortcircuits.inc()
                return [], capture
            for position in order:
                entry = self._term_entry(clause.all_of[position], clause,
                                         window, window_key)
                capture.terms[position] = entry.occs
                term_intervals = entry.intervals(now_us)
                satisfied = (term_intervals if satisfied is None
                             else intersect_two(satisfied, term_intervals))
                if not satisfied:
                    self._m_shortcircuits.inc()
                    return [], capture
        if clause.any_of:
            base = len(clause.all_of)
            parts = []
            for offset, token in enumerate(clause.any_of):
                entry = self._term_entry(token, clause, window, window_key)
                capture.terms[base + offset] = entry.occs
                parts.append(entry.intervals(now_us))
            any_intervals = union(*parts)
            satisfied = (any_intervals if satisfied is None
                         else intersect_two(satisfied, any_intervals))
            if not satisfied:
                return [], capture
        if satisfied is None and clause.annotations_only:
            # Pure annotation clause: all annotated occurrences in context.
            matched = tuple(
                occ for occ in self.database.all_occurrences()
                if occ.is_annotation and clause.matches_context(occ)
            )
            capture.annotations = matched
            satisfied = normalize([occ.interval(now_us) for occ in matched])
        if satisfied is None:
            satisfied = []
        if satisfied and clause.none_of:
            banned = union(
                *(
                    self._term_entry(token, clause, window,
                                     window_key).intervals(now_us)
                    for token in clause.none_of
                )
            )
            satisfied = subtract(satisfied, banned)
        return satisfied, capture

    def _evaluate(self, query, now_us):
        """One pass over the query: returns (intervals, clause captures).

        Clauses are intersected incrementally — an empty clause empties
        the whole conjunction, so later clauses are never retrieved.
        """
        window = self._query_window(query)
        window_key = self.database.window_key(window)
        captures = []
        clause_interval_lists = []
        for clause in query.clauses:
            satisfied, capture = self._clause_intervals(
                clause, now_us, window, window_key)
            captures.append(capture)
            if not satisfied:
                return [], captures
            clause_interval_lists.append(satisfied)
        intervals = intersect_many(clause_interval_lists)
        start = query.start_us if query.start_us is not None else 0
        end = query.end_us if query.end_us is not None else now_us
        return clamp_intervals(intervals, start, end), captures

    def satisfied_intervals(self, query, now_us=None):
        """All time intervals during which the query is satisfied."""
        now_us = now_us if now_us is not None else self.clock.now_us
        intervals, _captures = self._evaluate(query, now_us)
        return intervals

    # ------------------------------------------------------------------ #
    # Result construction

    def search(self, query, order_by=ORDER_CHRONOLOGICAL, limit=None,
               render=True, now_us=None):
        """Run a query; returns ranked :class:`SearchResult` objects."""
        now_us = now_us if now_us is not None else self.clock.now_us
        with self.telemetry.span("search.query") as span:
            watch = self.clock.stopwatch()
            intervals, captures = self._evaluate(query, now_us)
            results = []
            for start, end in intervals:
                substream = Substream(start, end)
                results.append(
                    SearchResult(
                        timestamp_us=start,
                        substream=substream,
                        snippet=self._snippet_from(captures, start, end),
                        score=self._score_from(captures, start, end,
                                               order_by, now_us),
                    )
                )
            results.sort(key=self._sort_key(order_by))
            if limit is not None:
                results = results[:limit]
            self._m_query_us.observe(watch.elapsed_us)
            if render and self.playback is not None:
                render_watch = self.clock.stopwatch()
                for result in results:
                    self._render(result)
                self._m_render_us.observe(render_watch.elapsed_us)
            self._m_queries.inc()
            self._m_results.inc(len(results))
            span.set("results", len(results))
        return results

    def _sort_key(self, order_by):
        if order_by == ORDER_CHRONOLOGICAL:
            return lambda r: r.timestamp_us
        # Higher score first for the ranked orders.
        return lambda r: (-r.score, r.timestamp_us)

    def _score_from(self, captures, start, end, order_by, now_us):
        if order_by == ORDER_PERSISTENCE:
            # "a user could be ... more interested in the records where the
            # text appeared only briefly": shorter visibility scores higher.
            return 1.0 / max(end - start, 1)
        if order_by == ORDER_FREQUENCY:
            # Counted from the evaluation capture: the postings were paid
            # for once while building intervals, never rescanned per
            # result.
            count = 0
            for capture in captures:
                for occs in capture.ordered_postings():
                    for occ in occs:
                        occ_start, occ_end = occ.interval(now_us)
                        if occ_start < end and occ_end > start:
                            count += 1
            return float(count)
        return float(-start)

    def _snippet_from(self, captures, start, end):
        """A short text snippet from an occurrence active in the window,
        chosen from the occurrences captured during evaluation (clause
        order, then the clause's term order, then posting order)."""
        for capture in captures:
            for occs in capture.ordered_postings():
                for occ in occs:
                    occ_end = occ.end_us if occ.end_us is not None else end
                    if occ.start_us < end and occ_end > start:
                        text = occ.text.strip()
                        return text[:160] + ("..." if len(text) > 160 else "")
            if capture.annotations is not None:
                # Pure annotation clause: snippet from the annotated text.
                for occ in capture.annotations:
                    occ_end = occ.end_us if occ.end_us is not None else end
                    if occ.start_us < end and occ_end > start:
                        text = occ.properties.get("annotation_text",
                                                  occ.text).strip()
                        return text[:160] + ("..." if len(text) > 160 else "")
        return ""

    #: Render offset into a substream: text events and the display flush
    #: that carries the matching pixels land within the same recording
    #: tick, so the screenshot is taken slightly after the match starts.
    RENDER_NUDGE_US = 500_000

    def _render(self, result):
        """Generate screenshots offscreen via the playback engine."""
        substream = result.substream
        start_point = min(
            substream.start_us + self.RENDER_NUDGE_US, substream.end_us
        )
        playable_start = self._playable(start_point)
        playable_end = self._playable(max(substream.end_us - 1, substream.start_us))
        if playable_start is None:
            return
        fb, _stats = self.playback.seek(playable_start)
        result.screenshot = fb
        substream.first_screenshot = fb
        if playable_end is not None and playable_end > playable_start:
            last_fb, _stats = self.playback.seek(playable_end)
            substream.last_screenshot = last_fb
        else:
            substream.last_screenshot = fb

    def _playable(self, time_us):
        """Clamp a query timestamp into the display record's range."""
        timeline = self.playback.record.timeline
        first = timeline.first_time_us
        if first is None:
            return None
        if time_us < first:
            return first
        return min(time_us, self.playback.record.end_us)

    def player_for(self, substream):
        """PVR controls restricted to one search-result substream."""
        from repro.display.playback import SubstreamPlayer

        if self.playback is None:
            raise ValueError("search engine has no playback attached")
        start = self._playable(substream.start_us)
        end = self._playable(substream.end_us)
        return SubstreamPlayer(self.playback, start, end)

    @property
    def cache_stats(self):
        if self.playback is None:
            return {"hits": 0, "misses": 0}
        return self.playback.cache_stats
