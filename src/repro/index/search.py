"""Search frontend (paper section 4.4).

Evaluation pipeline:

1. each clause's positive terms are resolved to occurrence postings,
   filtered by the clause's context constraints, and converted to
   visibility intervals (union per term across occurrences, intersection
   across ``all_of`` terms, union across ``any_of`` terms, subtraction of
   ``none_of``);
2. clause intervals are intersected across the query's clauses and clamped
   to the query's time range;
3. each maximal satisfied interval becomes a :class:`Substream` ("when the
   query is satisfied over a contiguous period of time, the result is
   displayed in the form of a first-last screenshot"); representative
   results are ranked by the requested criterion;
4. screenshots are rendered offscreen through the playback engine — "the
   operation is very similar to the visual playback ... with the
   difference being that it is done completely offscreen" — with the
   engine's LRU keyframe cache providing the section 4.4 speedup.
"""

from dataclasses import dataclass

from repro.common.telemetry import resolve_telemetry
from repro.index.intervals import (
    clamp_intervals,
    intersect_many,
    normalize,
    subtract,
    union,
)

ORDER_CHRONOLOGICAL = "time"
ORDER_PERSISTENCE = "persistence"
ORDER_FREQUENCY = "frequency"


@dataclass
class Substream:
    """A maximal contiguous period during which the query was satisfied.

    Substreams "behave like a typical recording, where all the PVR
    functionality is available, but restricted to that portion of time."
    """

    start_us: int
    end_us: int
    first_screenshot: object = None
    last_screenshot: object = None

    @property
    def duration_us(self):
        return self.end_us - self.start_us


@dataclass
class SearchResult:
    """One result: a moment in the record plus its presentation."""

    timestamp_us: int
    substream: Substream
    snippet: str
    score: float
    screenshot: object = None


class SearchEngine:
    """Evaluates queries against the temporal database and renders
    results through the playback engine."""

    def __init__(self, database, playback=None, clock=None, telemetry=None):
        self.database = database
        self.playback = playback
        self.clock = clock if clock is not None else database.clock
        self.telemetry = resolve_telemetry(telemetry)
        metrics = self.telemetry.metrics
        self._m_queries = metrics.counter("index.queries")
        self._m_results = metrics.counter("index.results")
        self._m_query_us = metrics.histogram("index.query_us")
        self._m_render_us = metrics.histogram("index.render_us")

    # ------------------------------------------------------------------ #
    # Interval evaluation

    def _term_intervals(self, token, clause, now_us):
        intervals = []
        for occ in self.database.postings_for(token):
            if clause.matches_context(occ):
                intervals.append(occ.interval(now_us))
        return normalize(intervals)

    def _clause_intervals(self, clause, now_us):
        parts = []
        if clause.all_of:
            parts.extend(
                self._term_intervals(token, clause, now_us)
                for token in clause.all_of
            )
        if clause.any_of:
            parts.append(
                union(
                    *(
                        self._term_intervals(token, clause, now_us)
                        for token in clause.any_of
                    )
                )
            )
        if not parts and clause.annotations_only:
            # Pure annotation clause: all annotated occurrences in context.
            intervals = [
                occ.interval(now_us)
                for occ in self.database.all_occurrences()
                if occ.is_annotation and clause.matches_context(occ)
            ]
            parts.append(normalize(intervals))
        satisfied = intersect_many(parts) if parts else []
        if clause.none_of:
            banned = union(
                *(
                    self._term_intervals(token, clause, now_us)
                    for token in clause.none_of
                )
            )
            satisfied = subtract(satisfied, banned)
        return satisfied

    def satisfied_intervals(self, query, now_us=None):
        """All time intervals during which the query is satisfied."""
        now_us = now_us if now_us is not None else self.clock.now_us
        intervals = intersect_many(
            self._clause_intervals(clause, now_us) for clause in query.clauses
        )
        start = query.start_us if query.start_us is not None else 0
        end = query.end_us if query.end_us is not None else now_us
        return clamp_intervals(intervals, start, end)

    # ------------------------------------------------------------------ #
    # Result construction

    def search(self, query, order_by=ORDER_CHRONOLOGICAL, limit=None,
               render=True, now_us=None):
        """Run a query; returns ranked :class:`SearchResult` objects."""
        now_us = now_us if now_us is not None else self.clock.now_us
        with self.telemetry.span("search.query") as span:
            watch = self.clock.stopwatch()
            intervals = self.satisfied_intervals(query, now_us)
            results = []
            for start, end in intervals:
                substream = Substream(start, end)
                snippet = self._snippet_for(query, start, end)
                results.append(
                    SearchResult(
                        timestamp_us=start,
                        substream=substream,
                        snippet=snippet,
                        score=self._score(query, start, end, order_by, now_us),
                    )
                )
            results.sort(key=self._sort_key(order_by))
            if limit is not None:
                results = results[:limit]
            self._m_query_us.observe(watch.elapsed_us)
            if render and self.playback is not None:
                render_watch = self.clock.stopwatch()
                for result in results:
                    self._render(result)
                self._m_render_us.observe(render_watch.elapsed_us)
            self._m_queries.inc()
            self._m_results.inc(len(results))
            span.set("results", len(results))
        return results

    def _sort_key(self, order_by):
        if order_by == ORDER_CHRONOLOGICAL:
            return lambda r: r.timestamp_us
        # Higher score first for the ranked orders.
        return lambda r: (-r.score, r.timestamp_us)

    def _score(self, query, start, end, order_by, now_us):
        if order_by == ORDER_PERSISTENCE:
            # "a user could be ... more interested in the records where the
            # text appeared only briefly": shorter visibility scores higher.
            return 1.0 / max(end - start, 1)
        if order_by == ORDER_FREQUENCY:
            count = 0
            for clause in query.clauses:
                for token in clause.all_of + clause.any_of:
                    for occ in self.database.postings_for(token):
                        occ_start, occ_end = occ.interval(now_us)
                        if occ_start < end and occ_end > start:
                            count += 1
            return float(count)
        return float(-start)

    def _snippet_for(self, query, start, end):
        """A short text snippet from an occurrence active in the window."""
        for clause in query.clauses:
            positives = clause.all_of + clause.any_of
            for token in positives:
                for occ in self.database.postings_for(token):
                    occ_end = occ.end_us if occ.end_us is not None else end
                    if occ.start_us < end and occ_end > start:
                        text = occ.text.strip()
                        return text[:160] + ("..." if len(text) > 160 else "")
            if clause.annotations_only and not positives:
                # Pure annotation clause: snippet from the annotated text.
                for occ in self.database.all_occurrences():
                    occ_end = occ.end_us if occ.end_us is not None else end
                    if (occ.is_annotation and occ.start_us < end
                            and occ_end > start
                            and clause.matches_context(occ)):
                        text = occ.properties.get("annotation_text",
                                                  occ.text).strip()
                        return text[:160] + ("..." if len(text) > 160 else "")
        return ""

    #: Render offset into a substream: text events and the display flush
    #: that carries the matching pixels land within the same recording
    #: tick, so the screenshot is taken slightly after the match starts.
    RENDER_NUDGE_US = 500_000

    def _render(self, result):
        """Generate screenshots offscreen via the playback engine."""
        substream = result.substream
        start_point = min(
            substream.start_us + self.RENDER_NUDGE_US, substream.end_us
        )
        playable_start = self._playable(start_point)
        playable_end = self._playable(max(substream.end_us - 1, substream.start_us))
        if playable_start is None:
            return
        fb, _stats = self.playback.seek(playable_start)
        result.screenshot = fb
        substream.first_screenshot = fb
        if playable_end is not None and playable_end > playable_start:
            last_fb, _stats = self.playback.seek(playable_end)
            substream.last_screenshot = last_fb
        else:
            substream.last_screenshot = fb

    def _playable(self, time_us):
        """Clamp a query timestamp into the display record's range."""
        timeline = self.playback.record.timeline
        first = timeline.first_time_us
        if first is None:
            return None
        if time_us < first:
            return first
        return min(time_us, self.playback.record.end_us)

    def player_for(self, substream):
        """PVR controls restricted to one search-result substream."""
        from repro.display.playback import SubstreamPlayer

        if self.playback is None:
            raise ValueError("search engine has no playback attached")
        start = self._playable(substream.start_us)
        end = self._playable(substream.end_us)
        return SubstreamPlayer(self.playback, start, end)

    @property
    def cache_stats(self):
        if self.playback is None:
            return {"hits": 0, "misses": 0}
        return self.playback.cache_stats
