"""Temporal full-text index and search (paper sections 4.2 and 4.4).

The paper indexes "the full state of the desktop's text over time" in a
PostgreSQL + Tsearch2 database, so that *temporal relationships* between
pieces of text become queryable ("the time when she started reading a paper
while a particular web page was open").  This package implements those
semantics directly:

* :mod:`repro.index.tokenizer` -- text normalization and tokenization.
* :mod:`repro.index.intervals` -- time-interval algebra (union, intersect,
  subtract) used to evaluate temporal queries.
* :mod:`repro.index.database` -- the temporal text database: occurrences
  of text with context (app, window, focus, properties) and visibility
  intervals, plus the inverted term index.
* :mod:`repro.index.query` -- the query model: keyword clauses with
  per-clause context constraints, combinable across applications, plus
  time ranges, focus filters and annotation filters.
* :mod:`repro.index.search` -- the search frontend: evaluates queries,
  ranks results (chronological / persistence / frequency), renders result
  screenshots through the playback engine with LRU caching, and folds
  contiguous hits into substreams with first-last screenshots.
"""

from repro.index.database import (
    DEFAULT_EPOCH_WIDTH_US,
    Occurrence,
    TemporalTextDatabase,
)
from repro.index.intervals import (
    clamp_intervals,
    intersect_many,
    intersect_two,
    overlaps_window,
    span,
    subtract,
    total_duration,
    union,
    with_open_intervals,
)
from repro.index.query import Clause, Query
from repro.index.search import SearchEngine, SearchResult, Substream
from repro.index.tokenizer import tokenize

__all__ = [
    "tokenize",
    "union",
    "intersect_two",
    "intersect_many",
    "subtract",
    "clamp_intervals",
    "total_duration",
    "overlaps_window",
    "span",
    "with_open_intervals",
    "DEFAULT_EPOCH_WIDTH_US",
    "TemporalTextDatabase",
    "Occurrence",
    "Query",
    "Clause",
    "SearchEngine",
    "SearchResult",
    "Substream",
]
