"""Simulated desktop applications.

A :class:`SimApplication` bundles everything one real application
contributes to the recorded state:

* a process in the session's container (memory, files, sockets);
* an accessibility tree exposing its on-screen text;
* drawing through the virtual display driver.

Workload generators drive these objects; nothing below this layer knows
which scenario is running.
"""

import zlib

import numpy as np

from repro.common.costs import PAGE_SIZE
from repro.access.toolkit import AccessibleApp, Role
from repro.display.commands import (
    BitmapCmd,
    CopyCmd,
    RawCmd,
    Region,
    SolidFillCmd,
    VideoFrameCmd,
)
from repro.vex.sockets import Socket, SocketState

_GLYPH_H = 8
_GLYPH_W = 5


class SimApplication:
    """One simulated application inside a desktop session."""

    def __init__(self, session, name, accessible=True, nice=0):
        self.session = session
        self.name = name
        self.process = session.container.spawn(
            name, parent=session.init_process, nice=nice
        )
        self.ax = AccessibleApp(name, session.registry, session.clock,
                                session.costs, accessible=accessible)
        self.window = self.ax.add_node(
            self.ax.root, Role.WINDOW, name="%s - window" % name
        )
        self._heap = self.process.address_space.mmap(1, name="heap")
        self._heap_pages = 1
        # Seed from a *stable* digest of the name: builtin hash()
        # varies with PYTHONHASHSEED across processes, which would
        # make the same scripted workload draw different bytes in
        # different runs (and break cross-session page dedup).
        self._rng = np.random.default_rng(
            zlib.crc32(name.encode("utf-8")))
        self._fill_cursor = 0
        self.closed = False

    # ------------------------------------------------------------------ #
    # Display

    def draw(self, command):
        self.session.driver.submit(command)

    def draw_fill(self, region, color):
        self.draw(SolidFillCmd(region, color))

    def draw_raw(self, region, seed=None):
        """Draw procedural pixel content (photos, video frames)."""
        rng = self._rng if seed is None else np.random.default_rng(seed)
        pixels = rng.integers(0, 2**32, size=(region.h, region.w),
                              dtype=np.uint32)
        if seed is None and self.session.replay.active:
            # Stateful draw from the app's own RNG: a nondeterministic
            # input for the replay log (seeded draws are pure functions).
            self.session.replay.rng(self.name, "draw_raw",
                                    zlib.crc32(pixels.tobytes()),
                                    pixels.nbytes)
        self.draw(RawCmd(region, pixels))

    def draw_video_frame(self, region, seed=None):
        """Blit one decoded video frame (THINC's YUV 4:2:0 primitive)."""
        rng = self._rng if seed is None else np.random.default_rng(seed)
        region = Region(region.x, region.y, region.w & ~1, region.h & ~1)
        luma = rng.integers(0, 256, size=(region.h, region.w), dtype=np.uint8)
        if seed is None and self.session.replay.active:
            self.session.replay.rng(self.name, "video_frame",
                                    zlib.crc32(luma.tobytes()),
                                    luma.nbytes)
        self.draw(VideoFrameCmd(region, luma))

    def draw_text_line(self, region, seed=0):
        """Draw a line of text as a 1-bpp glyph bitmap (THINC BITMAP)."""
        rng = np.random.default_rng(seed)
        bits = rng.random((region.h, region.w)) > 0.55
        self.draw(BitmapCmd(region, bits, fg=0xFFFFFF, bg=0x000000))

    def scroll(self, region, lines_px):
        """Scroll a region up by ``lines_px`` pixels (terminal output)."""
        if lines_px <= 0 or lines_px >= region.h:
            return
        src = Region(region.x, region.y + lines_px, region.w,
                     region.h - lines_px)
        dst = Region(region.x, region.y, region.w, region.h - lines_px)
        self.draw(CopyCmd(dst, src))

    def flush_display(self):
        return self.session.driver.flush()

    # ------------------------------------------------------------------ #
    # Accessible text

    def show_text(self, text, role=Role.PARAGRAPH, parent=None,
                  properties=None):
        """Put text on screen (creates an accessible node)."""
        return self.ax.add_node(parent or self.window, role, text=text,
                                properties=properties)

    def update_text(self, node, text):
        self.ax.set_text(node, text)

    def remove_text(self, node):
        self.ax.remove_node(node)

    def focus(self):
        for other in self.session.apps.values():
            if other is not self and other.ax.focused:
                other.ax.set_focus(False)
        self.ax.set_focus(True)

    # ------------------------------------------------------------------ #
    # Input handling (events routed from the viewer, section 2)

    def handle_key(self, event):
        """Default key handling: typed text accumulates in an accessible
        input node (which is how typed annotations reach the index);
        combination keys go to the accessibility layer."""
        if event.combo:
            self.ax.press_key_combo(event.combo)
            return
        if not event.text:
            return
        if getattr(self, "_input_node", None) is None:
            self._input_node = self.show_text("")
        current = self._input_node.text
        self.update_text(self._input_node, current + event.text)

    def handle_mouse(self, event):
        """Default mouse handling: selections go to the accessibility
        layer (feeding the select-then-combo annotation flow)."""
        if event.kind == "select":
            target = getattr(self, "_input_node", None) or self.window
            self.ax.select_text(target, event.payload)

    @property
    def typed_text(self):
        """Text accumulated from routed key events."""
        node = getattr(self, "_input_node", None)
        return node.text if node is not None else ""

    def annotate_selection(self, node, selection):
        """Select text and press the annotation combo (section 4.4)."""
        from repro.access.daemon import IndexingDaemon

        self.ax.select_text(node, selection)
        self.ax.press_key_combo(IndexingDaemon.ANNOTATE_COMBO)

    # ------------------------------------------------------------------ #
    # Memory

    def _page_content(self, compress_ratio=5.0):
        """One page of content with a controlled zlib compressibility.

        The paper's checkpoints compress roughly 4-5x with gzip; pages are
        built from a random prefix (incompressible) padded with repetition
        so the measured ratio lands near ``compress_ratio``.
        """
        random_bytes = max(16, int(PAGE_SIZE / compress_ratio))
        head = self._rng.bytes(random_bytes)
        if self.session.replay.active:
            self.session.replay.rng(self.name, "page",
                                    zlib.crc32(head), len(head))
        pad = PAGE_SIZE - random_bytes
        return head + bytes(pad)

    def dirty_memory(self, nbytes, compress_ratio=5.0, hot=False):
        """Write ``nbytes`` of fresh content over the app's working set,
        growing the heap as needed (round-robin over pages, whole pages at
        a time).  ``hot=True`` rewrites the *same* leading pages every call
        (heap churn) instead of sweeping the working set — the pattern that
        makes the checkpoint policy's skips save storage, since a skipped
        interval coalesces many rewrites of one page into one saved copy."""
        npages = max(1, nbytes // PAGE_SIZE)
        if hot:
            self._fill_cursor = 0
        if npages > self._heap_pages:
            # The working set must at least cover one write burst,
            # otherwise every page of the burst lands on the same frame.
            self.grow_memory((npages - self._heap_pages) * PAGE_SIZE,
                             compress_ratio)
        space = self.process.address_space
        for _ in range(npages):
            page_index = self._fill_cursor % self._heap_pages
            space.write_page(self._heap, page_index,
                             self._page_content(compress_ratio))
            self._fill_cursor += 1

    def grow_memory(self, nbytes, compress_ratio=5.0):
        """Grow the resident working set by ``nbytes`` (new pages)."""
        npages = max(1, nbytes // PAGE_SIZE)
        space = self.process.address_space
        space.mremap(self._heap.start, self._heap_pages + npages)
        for i in range(npages):
            space.write_page(self._heap, self._heap_pages + i,
                             self._page_content(compress_ratio))
        self._heap_pages += npages
        self._fill_cursor = 0

    @property
    def resident_bytes(self):
        return self.process.address_space.resident_bytes

    # ------------------------------------------------------------------ #
    # Files and I/O

    def write_file(self, path, data, append=False):
        self.session.fs.write_file(path, data, append=append)

    def read_file(self, path):
        return self.session.fs.read_file(path)

    def open_file(self, path):
        handle = self.session.fs.open(path)
        entry = self.process.open_fd(path=path, inode=handle.inode_id)
        return handle, entry

    def unlink_open_file(self, path, entry):
        """Delete a file the app still holds open (scratch-file pattern)."""
        self.session.fs.unlink(path)
        entry.unlinked = True

    def blocking_io(self, duration_us):
        """Enter uninterruptible disk I/O for ``duration_us``."""
        self.process.begin_io(self.session.clock.now_us, duration_us)

    def compute(self, duration_us):
        """Burn CPU (charges the session clock)."""
        self.session.clock.advance_us(duration_us)

    def connect(self, remote, proto="tcp", internal=False):
        local = "10.0.0.5:%d" % (40_000 + len(self.process.open_files))
        sock = Socket(proto, local, remote,
                      state=SocketState.ESTABLISHED, internal=internal)
        entry = self.process.open_fd(kind="socket", socket=sock)
        if self.session.replay.active:
            self.session.replay.socket(self.name, proto, local, remote,
                                       internal)
        return sock, entry

    # ------------------------------------------------------------------ #

    def close(self):
        self.session.registry.unregister_app(self.name)
        self.process.exit(0)
        self.session.container.reap(self.process)
        self.closed = True
