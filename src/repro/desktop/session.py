"""One user's desktop session.

"DejaView consists of a server that runs a user's desktop environment
including the window system and all applications, and a viewer application"
(section 2).  A :class:`DesktopSession` assembles that server side: the
simulated kernel, a container encapsulating the session, the log-structured
file system, the virtual display driver with its display server process
*inside* the container (so display state is part of every checkpoint —
section 3), and the accessibility registry.
"""

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.flightrec import NULL_SCOPE, REC_EVENT
from repro.access.registry import DesktopRegistry
from repro.display.driver import VirtualDisplayDriver
from repro.display.viewer import Viewer
from repro.fs.branch import BranchableStore
from repro.replay.tap import resolve_tap
from repro.vex.kernel import Kernel

DEFAULT_WIDTH = 320
DEFAULT_HEIGHT = 240


class DesktopSession:
    """The assembled desktop stack, on one virtual clock."""

    def __init__(self, width=DEFAULT_WIDTH, height=DEFAULT_HEIGHT,
                 costs=DEFAULT_COSTS, clock=None, name="desktop",
                 attach_viewer=True, replay_tap=None):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        #: Session name: the container name, the viewer tab label, and —
        #: under a fleet — this session's owner id in the shared page CAS.
        self.name = name
        #: Replay tap: records (or, in replay mode, verifies) every
        #: nondeterministic input crossing the vex boundary.  Bound
        #: before anything below is built so session construction itself
        #: is covered; the no-op tap when record/replay is off.
        self.replay = resolve_tap(replay_tap)
        if self.replay.active:
            self.clock.bind_replay(self.replay)
        self.kernel = Kernel(clock=self.clock, costs=costs)
        self.kernel.replay = self.replay
        self.container = self.kernel.create_container(name)
        self.fsstore = BranchableStore(clock=self.clock, costs=costs)
        self._populate_home()
        self.container.mount = self.fsstore.fs
        # The display server runs inside the container: its state is part
        # of the session and therefore of every checkpoint.
        self.init_process = self.container.spawn("init")
        self.display_server = self.container.spawn(
            "display-server", parent=self.init_process
        )
        self.container.namespace.bind("display", ":0", self.display_server)
        self.driver = VirtualDisplayDriver(width, height, clock=self.clock,
                                           costs=costs)
        self.viewer = None
        if attach_viewer:
            self.viewer = Viewer(width, height, clock=self.clock, costs=costs)
            self.driver.attach_sink(self.viewer)
        self.registry = DesktopRegistry(self.clock, costs=costs)
        self.apps = {}
        #: Flight-recorder scope for session lifecycle events (app
        #: launch/quit); the no-op scope until a recorder is bound.
        self.flight = NULL_SCOPE
        from repro.desktop.input import InputRouter

        self.input_router = InputRouter(self)

    def _populate_home(self):
        fs = self.fsstore.fs
        fs.makedirs("/home/user")
        fs.makedirs("/tmp")
        fs.makedirs("/etc")
        fs.create("/etc/hostname", b"dejaview-desktop\n")

    # ------------------------------------------------------------------ #

    @property
    def fs(self):
        """The session's live file system."""
        return self.fsstore.fs

    @property
    def width(self):
        return self.driver.framebuffer.width

    @property
    def height(self):
        return self.driver.framebuffer.height

    def bind_flightrec(self, flightscope):
        """Journal session lifecycle events (app launch/quit) through a
        flight-recorder scope.  Reading state only — never charges the
        clock."""
        self.flight = flightscope

    def launch(self, name, accessible=True, nice=0):
        """Launch a simulated application in this session."""
        from repro.desktop.apps import SimApplication

        app = SimApplication(self, name, accessible=accessible, nice=nice)
        self.apps[name] = app
        if self.flight.active:
            self.flight.record(REC_EVENT, {"event": "app.launch",
                                           "app": name})
        return app

    def quit(self, name):
        """Terminate an application and reap its process."""
        app = self.apps.pop(name)
        app.close()
        if self.flight.active:
            self.flight.record(REC_EVENT, {"event": "app.quit",
                                           "app": name})
        return app

    def idle(self, duration_us):
        """Let simulated time pass with no activity."""
        self.clock.advance_us(duration_us)

    # ------------------------------------------------------------------ #
    # Viewer input (section 2: the viewer forwards input to the server)

    def type_text(self, text):
        """Type into the focused application."""
        from repro.desktop.input import KeyEvent

        return self.input_router.deliver_key(KeyEvent(text=text))

    def press_combo(self, combo):
        """Press a combination key in the focused application."""
        from repro.desktop.input import KeyEvent

        return self.input_router.deliver_key(KeyEvent(combo=combo))

    def select_text(self, selection, x=0, y=0):
        """Select text with the mouse in the focused application."""
        from repro.desktop.input import MouseEvent

        return self.input_router.deliver_mouse(
            MouseEvent(x=x, y=y, kind="select", payload=selection)
        )
