"""The DejaView desktop layer: the pieces users actually touch.

* :mod:`repro.desktop.session` -- :class:`DesktopSession`: one user's
  desktop: kernel + container + file system + virtual display +
  accessibility registry, wired to a single virtual clock.
* :mod:`repro.desktop.apps` -- :class:`SimApplication`: a simulated desktop
  application that draws, exposes accessible text, dirties memory, does
  file I/O and opens sockets — the interface workload generators drive.
* :mod:`repro.desktop.dejaview` -- :class:`DejaView`: the recorder itself.
  Attaches display recording, text indexing and continuous checkpointing to
  a session; provides the user-facing verbs: play back, browse, search,
  and *Take me back* (revive).
"""

from repro.desktop.apps import SimApplication
from repro.desktop.dejaview import DejaView, RecordingConfig
from repro.desktop.input import InputRouter, KeyEvent, MouseEvent
from repro.desktop.manager import SessionManager, SessionTab
from repro.desktop.session import DesktopSession

__all__ = [
    "DesktopSession",
    "SimApplication",
    "DejaView",
    "RecordingConfig",
    "SessionManager",
    "SessionTab",
    "InputRouter",
    "KeyEvent",
    "MouseEvent",
]
