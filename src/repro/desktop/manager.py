"""Multi-session viewer: tabs, clipboard, and revived-session displays.

"When the user revives a past session, an additional viewer window is used
to access the revived session, using a model similar to the tabs
commonplace in today's web browsers. ... DejaView extends this concept by
allowing simultaneous revival of multiple past sessions, that can run
side-by-side independently of each other and of the current session.  The
user can copy and paste content amongst her active sessions" (section 2).

:class:`SessionManager` owns the tab list: tab 0 is the live desktop;
*Take me back* opens a new tab whose viewer is initialized from the display
record at the revived moment (the revived session's screen is exactly what
the user was looking at).  A shared clipboard moves text across tabs.
"""

from dataclasses import dataclass

from repro.common.errors import DejaViewError
from repro.display.viewer import Viewer


@dataclass
class SessionTab:
    """One viewer tab: the live desktop or a revived session."""

    name: str
    kind: str  # "live" | "revived"
    container: object
    viewer: object
    revive_result: object = None

    @property
    def mount(self):
        return self.container.mount


class SessionManager:
    """The tabbed viewer plus the cross-session clipboard."""

    def __init__(self, session, dejaview):
        self.session = session
        self.dejaview = dejaview
        self.clipboard = None
        live_viewer = session.viewer
        if live_viewer is None:
            live_viewer = Viewer(session.width, session.height,
                                 clock=session.clock, costs=session.costs)
            session.driver.attach_sink(live_viewer)
            session.viewer = live_viewer
        self.tabs = [
            SessionTab(
                name="live",
                kind="live",
                container=session.container,
                viewer=live_viewer,
            )
        ]

    # ------------------------------------------------------------------ #
    # Tabs

    @property
    def live_tab(self):
        return self.tabs[0]

    def tab(self, name):
        for tab in self.tabs:
            if tab.name == name:
                return tab
        raise DejaViewError("no session tab named %r" % name)

    def take_me_back(self, time_us, cached=None, network_enabled=False,
                     demand_paging=False):
        """Revive at ``time_us`` in a new tab; returns the tab.

        The new tab's viewer starts showing the recorded screen at the
        revived moment, so the user resumes exactly what they were seeing.
        """
        result = self.dejaview.take_me_back(
            time_us, cached=cached, network_enabled=network_enabled,
        ) if not demand_paging else self.dejaview.reviver.revive(
            self.dejaview.checkpoint_before(time_us).checkpoint_id,
            cached=cached, network_enabled=network_enabled,
            demand_paging=True,
        )
        viewer = Viewer(self.session.width, self.session.height,
                        clock=self.session.clock, costs=self.session.costs)
        if self.dejaview.recorder is not None:
            try:
                fb, _stats = self.dejaview.browse(time_us)
                viewer.framebuffer = fb
            except Exception:
                pass  # no display record covering that instant
        tab = SessionTab(
            name=result.container.name,
            kind="revived",
            container=result.container,
            viewer=viewer,
            revive_result=result,
        )
        self.tabs.append(tab)
        return tab

    def close(self, tab):
        """Close a revived tab and tear its container down."""
        if tab.kind == "live":
            raise DejaViewError("the live session tab cannot be closed")
        self.tabs.remove(tab)
        self.session.kernel.destroy_container(tab.container)

    @property
    def revived_tabs(self):
        return [tab for tab in self.tabs if tab.kind == "revived"]

    # ------------------------------------------------------------------ #
    # Cross-session clipboard (section 2)

    def copy(self, text):
        """Copy text (from whichever tab the user selected it in)."""
        self.clipboard = text
        return text

    def paste(self):
        """The clipboard contents, usable in any tab."""
        if self.clipboard is None:
            raise DejaViewError("the clipboard is empty")
        return self.clipboard

    def copy_from_revived(self, tab, path):
        """Convenience: copy a file's text out of a revived session —
        the 'rescue old data into the present' workflow."""
        if tab.kind != "revived":
            raise DejaViewError("copy_from_revived needs a revived tab")
        return self.copy(tab.mount.read_file(path).decode("utf-8", "replace"))

    def paste_into_live_file(self, path):
        """Paste the clipboard into a file in the live session."""
        content = self.paste().encode("utf-8")
        self.session.fs.write_file(path, content)
        return path
