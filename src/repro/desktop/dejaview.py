"""The DejaView recorder: everything wired together.

Attach a :class:`DejaView` to a :class:`~repro.desktop.session.DesktopSession`
and it records the three streams the paper describes — display commands,
on-screen text with context, and continuous checkpoints — and offers the
user-facing verbs: playback, browse, search, and *Take me back*.

The :class:`RecordingConfig` mirrors the experimental setup of section 6:
each recording component can be enabled independently (Figure 2 measures
display / checkpoint / index recording separately and combined), checkpoints
can run at a fixed 1 Hz (the conservative benchmark configuration) or under
the section 5.1.3 policy (the real-usage configuration), and checkpoint
compression is a switch (Figure 4 reports both).
"""

from dataclasses import dataclass, field

from repro.checkpoint.engine import CheckpointEngine, EngineOptions
from repro.checkpoint.policy import CheckpointPolicy, PolicyConfig, PolicyContext
from repro.checkpoint.restore import ReviveManager
from repro.checkpoint.storage import CheckpointStorage
from repro.common.errors import CheckpointError, DejaViewError, ReviveError
from repro.common.faults import resolve_faults
from repro.common.flightrec import REC_EVENT, REC_RECOVERY, resolve_flightrec
from repro.common.telemetry import NULL_TELEMETRY, Telemetry
from repro.common.units import seconds
from repro.access.daemon import IndexingDaemon
from repro.display.playback import PlaybackEngine
from repro.display.recorder import DisplayRecorder, RecorderConfig
from repro.index.database import DEFAULT_EPOCH_WIDTH_US, TemporalTextDatabase
from repro.index.search import SearchEngine
from repro.replay.tap import NULL_TAP


@dataclass
class RecordingConfig:
    """Which recording components run, and how."""

    record_display: bool = True
    record_index: bool = True
    record_checkpoints: bool = True
    use_policy: bool = False
    """False = fixed 1 Hz checkpointing (the benchmarks' conservative
    setting); True = the section 5.1.3 display-driven policy."""
    policy_config: PolicyConfig = field(default_factory=PolicyConfig)
    engine_options: EngineOptions = field(default_factory=EngineOptions)
    recorder_config: RecorderConfig = field(default_factory=RecorderConfig)
    compress_checkpoints: bool = False
    checkpoint_page_store: bool = True
    """True (default) stores checkpoint pages in the content-addressed
    page store (serial format v3, cross-checkpoint dedup); False keeps
    the legacy whole-blob layout (v2) — the Figure 4 dedup baseline."""
    cas_shards: int = 1
    """Shard count for this session's private page store (ignored when a
    shared fleet ``page_cas`` is injected).  v3 manifests name digests,
    not extents, so the on-disk logical state is shard-layout-agnostic;
    sharding only changes the physical extent layout and lets group
    commits batch per shard."""
    telemetry_enabled: bool = True
    """Metrics + tracing for this recording session.  Telemetry never
    charges the virtual clock, so disabling it changes no recorded
    behavior — only whether anything is counted."""
    record_scale: float = 1.0
    """Display recording resolution relative to the screen (section 4.1)."""
    index_epoch_us: int = DEFAULT_EPOCH_WIDTH_US
    """Width of the text index's posting-list time buckets.  Windowed
    queries scan only the buckets overlapping their time range, so smaller
    epochs prune more for narrow windows at the price of more buckets."""
    fixed_interval_us: int = seconds(1)
    use_mirror_tree: bool = True
    """False switches the indexing daemon to the naive re-traversal
    strategy (ablation)."""
    fault_plan: object = None
    """A :class:`~repro.common.faults.FaultPlan` injected into every
    write path (crash/IO fault testing).  ``None`` — the default — binds
    the shared no-op plan, which adds no measurable overhead."""
    flightrec: object = None
    """A :class:`~repro.common.flightrec.FlightRecorder` journaling this
    session's closed spans, fault fires, recovery actions, and periodic
    counter deltas (under the session name as owner).  ``None`` — the
    default — binds the shared no-op recorder (NULL_FLIGHTREC): the
    tracer sink stays unset and the hot path is unchanged.  Journaling
    never charges the virtual clock, so enabling it keeps recordings
    bit-identical."""
    flightrec_rollup_ticks: int = 64
    """With a flight recorder bound, journal a counter-delta rollup
    record every this many recording ticks (0 disables the cadence)."""


@dataclass
class TickReport:
    """What happened during one recording tick."""

    checkpointed: bool = False
    checkpoint_result: object = None
    policy_reason: str = None
    display_commands: int = 0
    span: object = None
    """The tick's telemetry :class:`~repro.common.tracing.Span` (virtual +
    wall timings, with the checkpoint's phase spans nested inside); None
    when telemetry is disabled."""


class DejaView:
    """The personal virtual computer recorder."""

    def __init__(self, session, config=None, telemetry=None, page_cas=None):
        """``page_cas`` injects a shared
        :class:`~repro.checkpoint.storage.PageCAS` so several recorders
        dedup checkpoint pages against each other (fleet mode); the
        session's name becomes its owner id in the shared store.  ``None``
        — the default — keeps a private page store."""
        self.session = session
        self.config = config if config is not None else RecordingConfig()
        clock = session.clock
        costs = session.costs

        # One telemetry hub per recording session (injectable for tests and
        # for sharing a registry across sessions); everything below gets it.
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.config.telemetry_enabled:
            self.telemetry = Telemetry(clock)
        else:
            self.telemetry = NULL_TELEMETRY
        bind = getattr(session.fs, "bind_telemetry", None)
        if bind is not None:  # revived sessions may expose a union mount
            bind(self.telemetry)

        # One fault plan per recording session, shared by every write
        # path (same injection pattern as telemetry; NULL_FAULTS when
        # none is configured).
        self.faults = resolve_faults(self.config.fault_plan)
        if self.faults.active:
            self.faults.bind_telemetry(self.telemetry.metrics)
        bind_faults = getattr(session.fs, "bind_faults", None)
        if bind_faults is not None:
            bind_faults(self.faults)

        # Flight recorder: the always-on event journal.  The scope binds
        # this session's owner name and virtual clock; spans, fault
        # fires, lifecycle events, and recovery actions all land in one
        # (possibly fleet-shared) ring journal.
        self.flightrec = resolve_flightrec(self.config.flightrec)
        self._flight = self.flightrec.scope(
            getattr(session, "name", "local"), clock)
        if self._flight.active:
            if self.telemetry.enabled:
                self.telemetry.tracer.sink = self._flight.span_sink()
            if self.faults.active:
                self.faults.bind_flightrec(self._flight)
            bind_flight = getattr(session, "bind_flightrec", None)
            if bind_flight is not None:
                bind_flight(self._flight)

        # Replay tap: the session carries it (it observes the whole vex
        # substrate, not just recording); here it learns about telemetry,
        # the fault plan (the ``replay.log.append`` site), checkpoint
        # anchors, and crash recovery.  Revived sessions have no tap.
        self.replay = getattr(session, "replay", NULL_TAP)
        if self.replay.active:
            self.replay.bind_telemetry(self.telemetry.metrics)
            if self.faults.active:
                self.replay.bind_faults(self.faults)

        self.recorder = None
        if self.config.record_display:
            width = max(1, int(session.width * self.config.record_scale))
            height = max(1, int(session.height * self.config.record_scale))
            self.recorder = DisplayRecorder(
                width, height, clock=clock, costs=costs,
                config=self.config.recorder_config,
                telemetry=self.telemetry, faults=self.faults,
            )
            session.driver.attach_sink(self.recorder,
                                       scale=self.config.record_scale)

        self.database = None
        self.daemon = None
        if self.config.record_index:
            self.database = TemporalTextDatabase(
                clock, costs=costs, telemetry=self.telemetry,
                epoch_width_us=self.config.index_epoch_us,
                faults=self.faults,
            )
            self.daemon = IndexingDaemon(
                session.registry, self.database,
                use_mirror_tree=self.config.use_mirror_tree,
                telemetry=self.telemetry,
            )

        storage_kwargs = {}
        if page_cas is not None:
            storage_kwargs["cas"] = page_cas
            storage_kwargs["owner"] = getattr(session, "name", "local")
        else:
            storage_kwargs["shards"] = self.config.cas_shards
        self.storage = CheckpointStorage(
            clock=clock, costs=costs,
            compress=self.config.compress_checkpoints,
            faults=self.faults,
            telemetry=self.telemetry,
            page_store=self.config.checkpoint_page_store,
            **storage_kwargs,
        )
        self.engine = None
        self.policy = None
        if self.config.record_checkpoints:
            self.engine = CheckpointEngine(
                session.kernel, session.container, session.fsstore,
                self.storage, self.config.engine_options,
                telemetry=self.telemetry,
            )
            if self.config.use_policy:
                self.policy = CheckpointPolicy(self.config.policy_config)
        self.reviver = ReviveManager(session.kernel, session.fsstore,
                                     self.storage,
                                     telemetry=self.telemetry)
        self._m_ticks = self.telemetry.metrics.counter("tick.count")
        self._m_tick_commands = self.telemetry.metrics.counter(
            "tick.display_commands")
        self._m_revive_fallbacks = self.telemetry.metrics.counter(
            "revive.fallbacks")
        self._m_recoveries = self.telemetry.metrics.counter(
            "recover.sessions")
        self._m_thinned = self.telemetry.metrics.counter(
            "thin.checkpoints")
        self._m_thin_bytes = self.telemetry.metrics.counter(
            "thin.bytes_freed")
        self._last_checkpoint_us = None
        self._flight_rollup_ticks = (
            self.config.flightrec_rollup_ticks if self._flight.active else 0)
        self._ticks_since_rollup = 0

    # ------------------------------------------------------------------ #
    # Recording loop

    def tick(self, keyboard_input=False, mouse_input=False,
             fullscreen_video=False, screensaver=False, system_load=0.0):
        """One recording tick: flush the display and decide on a
        checkpoint.  Workload generators call this after each burst of
        application activity."""
        report = TickReport()
        with self.telemetry.span("tick") as span:
            report.span = span if span.name else None
            report.display_commands = self.session.driver.flush()
            activity = self.session.driver.drain_activity()
            self._m_ticks.inc()
            self._m_tick_commands.inc(report.display_commands)
            if self._flight_rollup_ticks:
                self._ticks_since_rollup += 1
                if self._ticks_since_rollup >= self._flight_rollup_ticks:
                    self._ticks_since_rollup = 0
                    self._flight.record_counter_deltas(
                        self.telemetry.metrics.counter_values())
            if self.engine is None:
                return report
            now = self.session.clock.now_us
            if self.policy is not None:
                decision = self.policy.decide(
                    PolicyContext(
                        now_us=now,
                        display_activity=activity,
                        keyboard_input=keyboard_input,
                        mouse_input=mouse_input,
                        fullscreen_video=fullscreen_video,
                        screensaver=screensaver,
                        system_load=system_load,
                    )
                )
                report.policy_reason = decision.reason
                take = decision.take
            else:
                # Fixed-rate mode: the paper's conservative benchmark setting,
                # "checkpoint once per second" regardless of activity.
                take = (
                    self._last_checkpoint_us is None
                    or now - self._last_checkpoint_us >= self.config.fixed_interval_us
                )
            if take:
                report.checkpoint_result = self.engine.checkpoint()
                report.checkpointed = True
                self._last_checkpoint_us = now
                if self.replay.active:
                    # Anchor: the checkpoint's identity plus the exact
                    # screen contents, the bit-identity replay verifies
                    # (and the resume point for --from-checkpoint).
                    result = report.checkpoint_result
                    self.replay.anchor(
                        result.checkpoint_id, result.timestamp_us,
                        self.session.driver.framebuffer.checksum(),
                        self.storage.blob_fingerprint(
                            result.checkpoint_id))
            span.set("checkpointed", report.checkpointed)
            span.set("display_commands", report.display_commands)
        return report

    # ------------------------------------------------------------------ #
    # Playback / browse / search

    def display_record(self):
        """Snapshot the display record as recorded so far."""
        if self.recorder is None:
            raise DejaViewError("display recording is not enabled")
        return self.recorder.finalize()

    def playback_engine(self, cache_capacity=8, prune=True):
        return PlaybackEngine(
            self.display_record(), clock=self.session.clock,
            costs=self.session.costs, cache_capacity=cache_capacity,
            prune=prune, telemetry=self.telemetry,
        )

    def browse(self, time_us, engine=None):
        """Skip the record to ``time_us`` (the slider operation)."""
        engine = engine or self.playback_engine()
        return engine.seek(time_us)

    def playback(self, start_us, end_us, speed=1.0, fastest=False,
                 engine=None):
        engine = engine or self.playback_engine()
        return engine.play(start_us, end_us, speed=speed, fastest=fastest)

    def search_engine(self, cache_capacity=8):
        if self.database is None:
            raise DejaViewError("text indexing is not enabled")
        playback = self.playback_engine(cache_capacity=cache_capacity) \
            if self.recorder is not None else None
        return SearchEngine(self.database, playback=playback,
                            clock=self.session.clock,
                            telemetry=self.telemetry)

    def search(self, query, **kwargs):
        """Search the record; results carry screenshots (section 4.4)."""
        return self.search_engine().search(query, **kwargs)

    # ------------------------------------------------------------------ #
    # Take me back

    def checkpoint_before(self, time_us):
        """The last checkpoint at or before ``time_us`` (section 5.2:
        "DejaView searches for the last checkpoint that occurred before
        that point in time")."""
        if self.engine is None:
            raise DejaViewError("checkpointing is not enabled")
        candidate = None
        for result in self.engine.history:
            if result.timestamp_us <= time_us:
                candidate = result
            else:
                break
        if candidate is None:
            raise DejaViewError(
                "no checkpoint exists at or before t=%dus" % time_us
            )
        return candidate

    def take_me_back(self, time_us, cached=None, network_enabled=False):
        """Revive the session as it was at ``time_us``.

        Falls back over progressively older checkpoints when the newest
        candidate is torn, corrupt, or fails to revive (counted as
        ``revive.fallbacks``) — a damaged image costs temporal precision,
        never the whole operation.  A *thinned* candidate is not damage:
        its tombstone names a surviving replay anchor, so it is revived
        by replaying forward from that anchor — never silently skipped,
        and never counted as a fallback.
        """
        if self.engine is None:
            raise DejaViewError("checkpointing is not enabled")
        candidates = [result for result in self.engine.history
                      if result.timestamp_us <= time_us]
        if not candidates:
            raise DejaViewError(
                "no checkpoint exists at or before t=%dus" % time_us
            )
        last_error = None
        for candidate in reversed(candidates):
            image_id = candidate.checkpoint_id
            if self.storage.is_thinned(image_id):
                # Replayable by construction (the tombstone was only
                # written with a verified surviving anchor); a failure
                # here is a real error, not a reason to lose precision.
                return self._revive_thinned(
                    image_id, cached=cached,
                    network_enabled=network_enabled,
                )
            ok = image_id in self.storage and self.storage.blob_ok(image_id)[0]
            if ok:
                try:
                    return self.reviver.revive(
                        image_id, cached=cached,
                        network_enabled=network_enabled,
                    )
                except (ReviveError, CheckpointError) as exc:
                    last_error = exc
            self._m_revive_fallbacks.inc()
        raise ReviveError(
            "no checkpoint at or before t=%dus survived verification"
            % time_us
        ) from last_error

    def _revive_thinned(self, image_id, cached=None, network_enabled=False):
        """Revive a THINNED instant by replay from its anchor."""
        tombstone = self.storage.tombstone_of(image_id)
        if tombstone is None:
            raise ReviveError("checkpoint %d is not thinned" % image_id)
        log_data = None
        if self.replay.active and hasattr(self.replay, "getvalue"):
            log_data = self.replay.getvalue()
        return self.reviver.revive_thinned(
            image_id, tombstone, log_data,
            cached=cached, network_enabled=network_enabled,
        )

    # ------------------------------------------------------------------ #
    # Checkpoint thinning

    def thin_checkpoints(self, policy=None, now_us=None, protect=(),
                         compact=False):
        """Apply an age-tiered :class:`ThinningPolicy` to this session's
        checkpoint timeline (see :func:`repro.checkpoint.gc.
        thin_checkpoints`).

        Anchors are harvested from the session's replay log when one is
        recording, so only instants replay can verify are thinned and
        tombstones carry the recorded framebuffer fingerprints.  Returns
        the :class:`ThinReport`.
        """
        from repro.checkpoint.gc import ThinningPolicy, thin_checkpoints

        if self.engine is None:
            raise DejaViewError("checkpointing is not enabled")
        if policy is None:
            policy = ThinningPolicy()
        if now_us is None:
            now_us = self.session.clock.now_us
        anchors = None
        if self.replay.active and hasattr(self.replay, "getvalue"):
            from repro.replay.replayer import anchor_index
            anchors = anchor_index(self.replay.getvalue())
        report = thin_checkpoints(
            self.storage, self.engine.history, policy, now_us,
            anchors=anchors, protect=protect, compact=compact,
        )
        if report.thinned_images:
            self._m_thinned.inc(len(report.thinned_images))
            self._m_thin_bytes.inc(report.image_bytes_freed)
            if self._flight.active:
                self._flight.record(REC_EVENT, {
                    "action": "thin",
                    "thinned": len(report.thinned_images),
                    "bytes_freed": report.image_bytes_freed,
                    "tombstones": report.tombstones,
                })
        return report

    # ------------------------------------------------------------------ #
    # Crash recovery

    def recover(self):
        """Post-crash recovery across every recorded stream (the reopen
        path: run this after an unclean shutdown, before recording
        resumes).

        Order matters only for the checkpoint store, whose chain repair
        wants the file system recovered first (bindings resolve against
        the recovered log).  Returns a per-subsystem report dict;
        ``report["ok"]`` is True when the surviving checkpoint chain
        verifies clean.
        """
        flight = self._flight if self._flight.active else None
        if flight is not None:
            flight.record(REC_RECOVERY, {"action": "recover.begin"})
        with self.telemetry.span("recover"):
            report = {"ok": True}
            # The replay event log recovers first: its barrier must land
            # before recovery work starts advancing the clock, so replays
            # verify exactly the pre-crash prefix.
            if self.replay.active:
                report["replay_log"] = self.replay.recover_mark()
            fs_recover = getattr(self.session.fs, "recover", None)
            if fs_recover is not None:
                report["fs"] = fs_recover()
            report["storage"] = self.storage.recover(
                fsstore=self.session.fsstore)
            report["ok"] = report["storage"]["verify_ok"]
            if self.engine is not None:
                report["engine"] = self.engine.recover_after_crash()
            if self.recorder is not None:
                report["display"] = self.recorder.recover()
            if self.database is not None:
                report["index"] = self.database.recover()
            self._m_recoveries.inc()
        if flight is not None:
            storage = report["storage"]
            summary = {
                "action": "recover.done",
                "ok": report["ok"],
                "storage_torn_dropped": len(storage.get("torn_dropped", ())),
                "storage_chain_dropped": len(
                    storage.get("chain_dropped", ())),
            }
            display = report.get("display")
            if display is not None:
                summary["display_log_bytes_dropped"] = \
                    display.get("log_bytes_dropped", 0)
                summary["display_shot_bytes_dropped"] = \
                    display.get("screenshot_bytes_dropped", 0)
            index = report.get("index")
            if index is not None:
                summary["index_uncommitted_dropped"] = len(
                    index.get("uncommitted_dropped", ()))
                summary["index_postings_rebuilt"] = \
                    index.get("postings_rebuilt", 0)
            flight.record(REC_RECOVERY, summary)
            flight.record_counter_deltas(
                self.telemetry.metrics.counter_values())
        return report

    # ------------------------------------------------------------------ #
    # Observability

    def telemetry_snapshot(self, span_limit=8):
        """JSON-ready view of everything the session's telemetry saw:
        counters, gauges, histogram summaries, recent span trees, plus the
        event bus's delivery accounting.  Empty (``enabled: False``) when
        telemetry is disabled."""
        snap = self.telemetry.snapshot(span_limit=span_limit)
        bus = self.session.registry.bus
        snap["event_bus"] = {
            "published": bus.published_count,
            "delivered": bus.delivered_count,
            "errors": bus.error_count,
        }
        if self.faults.active:
            # Per-site failpoint hit/fired accounting, straight from the
            # plan (reachable before only via the raw registry).
            snap["faults"] = self.faults.hit_snapshot()
        return snap

    # ------------------------------------------------------------------ #
    # Storage accounting (Figure 4)

    def storage_report(self):
        """Bytes recorded per stream so far."""
        report = {
            "display": self.recorder.total_nbytes if self.recorder else 0,
            "index": self.database.approximate_bytes() if self.database else 0,
            "checkpoint_uncompressed": self.storage.total_uncompressed_bytes,
            "checkpoint_compressed": self.storage.total_compressed_bytes,
            "fs_log": self.session.fs.log_bytes,
            "fs_visible": self.session.fs.visible_bytes(),
        }
        fs = self.session.fs
        if hasattr(fs, "copy_up_bytes"):
            # A revived branch records over a COW union mount: copy-ups
            # are the branch's private divergence cost (section 5.2).
            report["fs_copy_up"] = fs.copy_up_bytes
            report["fs_copy_up_files"] = fs.copy_up_count
        report.update(self.storage.dedup_stats())
        return report

    @property
    def checkpoint_count(self):
        return len(self.engine.history) if self.engine else 0
