"""Input routing: viewer → server → focused application.

"The viewer acts as a portal to access the desktop, sending mouse and
keyboard events to the server which passes them to the applications"
(section 2).  Security note from the paper: "user input is not directly
recorded; only the changes it effects on the display are kept" — the
router therefore never logs events; typing becomes visible to the record
only through the display updates and accessibility events it causes.

This is also the substrate for the two annotation flows of section 4.4:
typed text gets indexed because the focused application updates its
accessible input node, and select-plus-combo-key messages the indexing
daemon through the accessibility layer.
"""

from dataclasses import dataclass

from repro.common.errors import DejaViewError


@dataclass(frozen=True)
class KeyEvent:
    """A run of typed text, or a combination key."""

    text: str = ""
    combo: str = None


@dataclass(frozen=True)
class MouseEvent:
    """A pointer event.  ``kind`` is "click" or "select"; for selections,
    ``payload`` carries the selected text."""

    x: int
    y: int
    kind: str = "click"
    payload: str = ""


class InputRouter:
    """Delivers viewer input to the focused application."""

    def __init__(self, session):
        self.session = session
        self.keys_delivered = 0
        self.mouse_delivered = 0

    def _focused_app(self):
        for app in self.session.apps.values():
            if app.ax.focused:
                return app
        return None

    def deliver_key(self, event):
        """Route a key event to the focused application; returns it."""
        app = self._focused_app()
        if app is None:
            raise DejaViewError("no application holds the input focus")
        # The replay tap is not the user's record (the paper's privacy
        # stance above is about the *recording*): it is a diagnostic
        # event log, on only for record/replay verification runs.
        if self.session.replay.active:
            self.session.replay.input_event(
                "key", {"app": app.name, "text": event.text,
                        "combo": event.combo})
        app.handle_key(event)
        self.keys_delivered += 1
        return app

    def deliver_mouse(self, event):
        """Route a mouse event to the focused application; returns it."""
        app = self._focused_app()
        if app is None:
            raise DejaViewError("no application holds the input focus")
        if self.session.replay.active:
            self.session.replay.input_event(
                "mouse", {"app": app.name, "x": event.x, "y": event.y,
                          "kind": event.kind, "payload": event.payload})
        app.handle_mouse(event)
        self.mouse_delivered += 1
        return app
