"""Checkpoint pruning and storage reclamation.

The paper leans on "continued exponential improvements in storage capacity"
to keep everything forever; a practical deployment also wants to *prune*.
Pruning a checkpoint has two parts, and both have dependencies:

* **images** — an incremental image's pages may be the latest copy of pages
  that *later* images' page-location directories still reference, so the
  set of images that must be kept is the transitive owner set of the kept
  checkpoints;
* **file system snapshots** — the LFS snapshot bound to a pruned checkpoint
  becomes unprotected, and the log cleaner can reclaim blocks reachable
  only from unprotected history (the NILFS checkpoint/snapshot model).

With the content-addressed page store, deleting an image only decrements
page refcounts; pages whose last reference goes away leave *dead bytes*
inside their append-only extents.  :func:`prune_checkpoints` therefore
finishes with a **compaction pass** (:meth:`CheckpointStorage.compact`)
that reclaims orphaned pages and rewrites extents whose dead fraction
crossed the threshold, so pruning actually returns disk space instead of
just punching holes.

:func:`prune_checkpoints` performs all of it, safely.
"""

from dataclasses import dataclass

from repro.common.errors import CheckpointError


@dataclass
class PruneReport:
    """Outcome of one pruning pass."""

    kept_images: tuple
    deleted_images: tuple
    image_bytes_freed: int
    fs_bytes_reclaimed: int
    cas_orphans_reclaimed: int = 0
    extents_rewritten: int = 0
    pages_moved: int = 0
    extent_bytes_reclaimed: int = 0
    writeback_pages_drained: int = 0
    writeback_bytes_drained: int = 0


def required_images(storage, keep_ids):
    """The images that must be retained to revive every kept checkpoint.

    Each kept image's page-location directory names the image holding each
    page's latest copy; all of those owners are required (the directory is
    already transitive, so one hop suffices).
    """
    required = set()
    for checkpoint_id in keep_ids:
        if checkpoint_id not in storage:
            raise CheckpointError("cannot keep unknown checkpoint %d"
                                  % checkpoint_id)
        required.add(checkpoint_id)
        image = storage.load(checkpoint_id, cached=True)
        required.update(image.page_locations.values())
    return required


def prune_checkpoints(storage, fsstore, keep_ids, compact=True):
    """Delete every checkpoint not needed to revive ``keep_ids``.

    Returns a :class:`PruneReport`.  The file system's checkpoint bindings
    for deleted checkpoints are removed and the log cleaner runs, so both
    image storage and log space shrink.

    ``compact=False`` skips the trailing compaction pass — a fleet prunes
    each member storage with compaction off and then compacts the shared
    CAS once, on the service clock, so one session's pruning never
    charges another session for the extent rewrites.
    """
    keep_ids = set(keep_ids)
    required = required_images(storage, keep_ids)
    # Drain the writeback pipeline first: GC must never race in-flight
    # group commits (deleting a queued page cancels its append, but
    # compaction reclaims extents — every queued byte must be on disk or
    # cancelled before space accounting is trusted).
    drained = {}
    drainer = getattr(storage, "drain_writeback", None)
    if drainer is not None:
        drained = drainer()
    deleted = []
    freed = 0
    fs = fsstore.fs
    for image_id in storage.stored_ids():
        if image_id in required:
            continue
        freed += storage.delete(image_id)
        try:
            fs.unprotect_checkpoint(image_id)
        except Exception:
            pass  # the image may predate the fs binding (tests)
        deleted.append(image_id)
    reclaimed = fs.collect_garbage(fs.protected_txns())
    compaction = {}
    compactor = getattr(storage, "compact", None)
    if compact and compactor is not None:
        compaction = compactor()
    return PruneReport(
        kept_images=tuple(sorted(required)),
        deleted_images=tuple(sorted(deleted)),
        image_bytes_freed=freed,
        fs_bytes_reclaimed=reclaimed,
        cas_orphans_reclaimed=compaction.get("orphans_reclaimed", 0),
        extents_rewritten=compaction.get("extents_rewritten", 0),
        pages_moved=compaction.get("pages_moved", 0),
        extent_bytes_reclaimed=compaction.get("bytes_reclaimed", 0),
        writeback_pages_drained=drained.get("pages", 0),
        writeback_bytes_drained=drained.get("bytes", 0),
    )
