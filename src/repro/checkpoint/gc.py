"""Checkpoint pruning and storage reclamation.

The paper leans on "continued exponential improvements in storage capacity"
to keep everything forever; a practical deployment also wants to *prune*.
Pruning a checkpoint has two parts, and both have dependencies:

* **images** — an incremental image's pages may be the latest copy of pages
  that *later* images' page-location directories still reference, so the
  set of images that must be kept is the transitive owner set of the kept
  checkpoints;
* **file system snapshots** — the LFS snapshot bound to a pruned checkpoint
  becomes unprotected, and the log cleaner can reclaim blocks reachable
  only from unprotected history (the NILFS checkpoint/snapshot model).

With the content-addressed page store, deleting an image only decrements
page refcounts; pages whose last reference goes away leave *dead bytes*
inside their append-only extents.  :func:`prune_checkpoints` therefore
finishes with a **compaction pass** (:meth:`CheckpointStorage.compact`)
that reclaims orphaned pages and rewrites extents whose dead fraction
crossed the threshold, so pruning actually returns disk space instead of
just punching holes.

:func:`prune_checkpoints` performs all of it, safely.

**Thinning** (:func:`thin_checkpoints`) is the gentler sibling: instead of
deleting an instant outright, an age-tiered :class:`ThinningPolicy` drops
the checkpoint *bytes* of older instants while a THINNED tombstone keeps
them on the timeline — replaying the event log forward from the nearest
surviving anchor re-derives the dropped state bit-identically (the rr /
ReVirt insight: logging substitutes for state copies).  Thinning never
touches the recent tier, survivors' transitive required images, branch
fork points, explicit protections, or any instant without a surviving
replay anchor to re-derive it from.
"""

from dataclasses import dataclass, field

from repro.common.errors import CheckpointError
from repro.common.units import seconds


@dataclass
class PruneReport:
    """Outcome of one pruning pass."""

    kept_images: tuple
    deleted_images: tuple
    image_bytes_freed: int
    fs_bytes_reclaimed: int
    cas_orphans_reclaimed: int = 0
    extents_rewritten: int = 0
    pages_moved: int = 0
    extent_bytes_reclaimed: int = 0
    writeback_pages_drained: int = 0
    writeback_bytes_drained: int = 0


def required_images(storage, keep_ids):
    """The images that must be retained to revive every kept checkpoint.

    Each kept image's page-location directory names the image holding each
    page's latest copy; all of those owners are required (the directory is
    already transitive, so one hop suffices).
    """
    required = set()
    for checkpoint_id in keep_ids:
        if checkpoint_id not in storage:
            raise CheckpointError("cannot keep unknown checkpoint %d"
                                  % checkpoint_id)
        required.add(checkpoint_id)
        image = storage.load(checkpoint_id, cached=True)
        required.update(image.page_locations.values())
    return required


def prune_checkpoints(storage, fsstore, keep_ids, compact=True):
    """Delete every checkpoint not needed to revive ``keep_ids``.

    Returns a :class:`PruneReport`.  The file system's checkpoint bindings
    for deleted checkpoints are removed and the log cleaner runs, so both
    image storage and log space shrink.

    ``compact=False`` skips the trailing compaction pass — a fleet prunes
    each member storage with compaction off and then compacts the shared
    CAS once, on the service clock, so one session's pruning never
    charges another session for the extent rewrites.
    """
    keep_ids = set(keep_ids)
    required = required_images(storage, keep_ids)
    # Drain the writeback pipeline first: GC must never race in-flight
    # group commits (deleting a queued page cancels its append, but
    # compaction reclaims extents — every queued byte must be on disk or
    # cancelled before space accounting is trusted).
    drained = {}
    drainer = getattr(storage, "drain_writeback", None)
    if drainer is not None:
        drained = drainer()
    deleted = []
    freed = 0
    fs = fsstore.fs
    for image_id in storage.stored_ids():
        if image_id in required:
            continue
        freed += storage.delete(image_id)
        try:
            fs.unprotect_checkpoint(image_id)
        except Exception:
            pass  # the image may predate the fs binding (tests)
        deleted.append(image_id)
    reclaimed = fs.collect_garbage(fs.protected_txns())
    # Pruning may have deleted a tombstone's replay anchor out from
    # under it; such tombstones can no longer revive and are dropped.
    reconcile = getattr(storage, "reconcile_tombstones", None)
    if reconcile is not None:
        reconcile()
    compaction = {}
    compactor = getattr(storage, "compact", None)
    if compact and compactor is not None:
        compaction = compactor()
    return PruneReport(
        kept_images=tuple(sorted(required)),
        deleted_images=tuple(sorted(deleted)),
        image_bytes_freed=freed,
        fs_bytes_reclaimed=reclaimed,
        cas_orphans_reclaimed=compaction.get("orphans_reclaimed", 0),
        extents_rewritten=compaction.get("extents_rewritten", 0),
        pages_moved=compaction.get("pages_moved", 0),
        extent_bytes_reclaimed=compaction.get("bytes_reclaimed", 0),
        writeback_pages_drained=drained.get("pages", 0),
        writeback_bytes_drained=drained.get("bytes", 0),
    )


# ---------------------------------------------------------------------- #
# Checkpoint thinning via replay

#: Everything younger than this survives untouched (the paper's "revive
#: at a time relatively close to the current time" is the common case).
DEFAULT_RECENT_WINDOW_US = seconds(5)

#: Age tiers beyond the recent window, youngest first: ``(age_limit_us,
#: keep_every_nth)``; ``None`` as the limit means "and older".  The
#: default keeps every 2nd instant up to a minute of age and every 4th
#: beyond that.
DEFAULT_TIERS = ((seconds(60), 2), (None, 4))


@dataclass(frozen=True)
class ThinningPolicy:
    """Age-tiered retention for the checkpoint stream.

    Instants younger than ``recent_window_us`` are always kept.  Older
    instants fall into ``tiers`` — ``(age_limit_us, keep_every_nth)``
    pairs ordered youngest-first, ``None`` meaning unbounded age — and
    within each tier every Nth instant (oldest-first) is kept as a
    replay anchor while the rest become thinning candidates.  The
    newest instant and anything in ``protect`` are never candidates.

    Tier positions are counted over the *full* timeline (tombstoned
    instants included), so re-planning after a pass — or after a crash
    mid-pass — selects the same survivors: thinning is idempotent.
    """

    recent_window_us: int = DEFAULT_RECENT_WINDOW_US
    tiers: tuple = DEFAULT_TIERS

    def plan(self, history, now_us, protect=()):
        """The checkpoint ids this policy wants thinned.

        ``history`` is an iterable of records with ``checkpoint_id`` and
        ``timestamp_us`` attributes (or ``(checkpoint_id,
        timestamp_us)`` pairs) covering the whole timeline; ``now_us``
        is the clock ages are measured against.
        """
        entries = []
        for record in history:
            checkpoint_id = getattr(record, "checkpoint_id", None)
            if checkpoint_id is None:
                checkpoint_id, timestamp_us = record
            else:
                timestamp_us = record.timestamp_us
            entries.append((timestamp_us, checkpoint_id))
        entries.sort()
        protect = set(protect)
        if entries:
            protect.add(entries[-1][1])  # the newest instant survives
        tier_positions = {}
        drops = set()
        for timestamp_us, checkpoint_id in entries:  # oldest first
            age = now_us - timestamp_us
            if age <= self.recent_window_us:
                continue
            selected = None
            for index, (age_limit_us, keep_every) in enumerate(self.tiers):
                if age_limit_us is None or age <= age_limit_us:
                    selected = (index, max(1, keep_every))
                    break
            if selected is None:
                continue
            tier_index, keep_every = selected
            position = tier_positions.get(tier_index, 0)
            tier_positions[tier_index] = position + 1
            if position % keep_every == 0:
                continue
            if checkpoint_id in protect:
                continue
            drops.add(checkpoint_id)
        return drops


@dataclass
class ThinReport:
    """Outcome of one thinning pass."""

    kept_images: tuple
    thinned_images: tuple
    image_bytes_freed: int
    tombstones: int
    skipped_required: tuple = ()
    skipped_unanchored: tuple = ()
    cas_orphans_reclaimed: int = 0
    extent_bytes_reclaimed: int = 0
    compaction: dict = field(default_factory=dict)


def thin_checkpoints(storage, history, policy, now_us, anchors=None,
                     protect=(), compact=False):
    """Apply a :class:`ThinningPolicy` to a checkpoint timeline.

    Each selected instant's bytes are dropped through
    :meth:`CheckpointStorage.thin`, leaving a THINNED tombstone naming
    the nearest surviving earlier anchor to replay from.  Never thinned,
    whatever the policy says: ids in ``protect`` (branch fork points,
    last-good recovery anchors), the newest instant, any image in a
    survivor's transitive required set (``skipped_required`` — thinning
    must never create dangling page locations), and any instant with no
    surviving earlier anchor to re-derive it from
    (``skipped_unanchored``).

    ``anchors`` — ``{checkpoint_id: {"timestamp_us",
    "framebuffer_sha1", "checkpoint_fp"}}`` harvested from the replay
    log's EV_ANCHOR events — restricts both sides when given: only
    instants *carrying* an anchor event may be thinned (replay must
    verify and stop at the target's anchor) and only anchored survivors
    may serve as replay sources.  ``None`` (no replay log, e.g. fleet
    members without taps) lets any surviving checkpoint anchor: the
    tombstones then still free storage and keep the timeline, but only
    log-bearing sessions can replay-revive them.

    ``compact=True`` finishes with a CAS compaction pass on the
    storage's own clock (solo sessions); a fleet compacts the shared
    CAS separately on the service clock.  Returns a :class:`ThinReport`.
    """
    entries = []
    for record in history:
        checkpoint_id = getattr(record, "checkpoint_id", None)
        if checkpoint_id is None:
            checkpoint_id, timestamp_us = record
        else:
            timestamp_us = record.timestamp_us
        entries.append((timestamp_us, checkpoint_id))
    entries.sort()
    stored = [(ts, cid) for ts, cid in entries if cid in storage]
    drops = policy.plan([(cid, ts) for ts, cid in entries], now_us,
                        protect=protect)
    drops &= {cid for _ts, cid in stored}
    skipped_unanchored = []
    if anchors is not None:
        unanchored = {cid for cid in drops if cid not in anchors}
        skipped_unanchored.extend(sorted(unanchored))
        drops -= unanchored
    survivors = [cid for _ts, cid in stored if cid not in drops]
    required = required_images(storage, survivors)
    skipped_required = tuple(sorted(drops & required))
    drops -= required
    thinned = []
    freed = 0
    last_anchor = None
    for timestamp_us, checkpoint_id in stored:
        if checkpoint_id not in drops:
            if anchors is None or checkpoint_id in anchors:
                last_anchor = checkpoint_id
            continue
        if last_anchor is None:
            skipped_unanchored.append(checkpoint_id)
            continue
        info = anchors.get(checkpoint_id, {}) if anchors else {}
        freed += storage.thin(
            checkpoint_id, anchor_id=last_anchor,
            timestamp_us=timestamp_us,
            framebuffer_sha1=info.get("framebuffer_sha1"))
        thinned.append(checkpoint_id)
    compaction = {}
    if compact and thinned:
        compaction = storage.compact()
    return ThinReport(
        kept_images=tuple(cid for _ts, cid in stored
                          if cid not in set(thinned)),
        thinned_images=tuple(thinned),
        image_bytes_freed=freed,
        tombstones=len(getattr(storage, "thinned_ids", lambda: ())()),
        skipped_required=skipped_required,
        skipped_unanchored=tuple(sorted(set(skipped_unanchored))),
        cas_orphans_reclaimed=compaction.get("orphans_reclaimed", 0),
        extent_bytes_reclaimed=compaction.get("bytes_reclaimed", 0),
        compaction=compaction,
    )
