"""Revive: restore a session from a checkpoint (section 5.2).

Reviving a checkpointed desktop session:

1. create a new virtual execution environment (fresh private namespace, so
   the revived session can reuse its original vpids without clashing with
   the live session or other revives);
2. restore the file system: branch the snapshot bound to the checkpoint
   into an independent read-write union view;
3. recreate the process forest and restore each process's state from the
   checkpoint image — walking the incremental chain for pages whose latest
   copy lives in an older image;
4. resume: external TCP connections are reset, UDP and internal sockets
   restored precisely, network access disabled by default.
"""

from dataclasses import dataclass, field

from repro.common.errors import ReviveError
from repro.common.telemetry import resolve_telemetry
from repro.replay.tap import resolve_tap
from repro.vex.process import ProcessState
from repro.vex.sockets import Socket


@dataclass
class ReviveResult:
    """Outcome of one revive (the Figure 7 quantities)."""

    container: object
    checkpoint_id: int
    duration_us: int
    images_accessed: int
    pages_restored: int
    bytes_read: int
    cached: bool
    reset_sockets: int = 0
    processes: int = 0
    demand_paged: bool = False
    #: Pages left to fault in lazily (demand-paging mode only).
    pages_deferred: int = 0
    #: The :class:`DemandPager` serving this revive (demand-paging only).
    pager: object = None
    #: Every image id the revived memory may page from: the checkpoint
    #: plus its incremental chain (what a forked branch must pin).
    required_images: tuple = field(default_factory=tuple)
    #: True when this revive re-derived a THINNED instant by replaying
    #: forward from a surviving anchor instead of reading stored bytes.
    replayed: bool = False
    #: The surviving anchor checkpoint the replay seeded from.
    replay_anchor_id: object = None
    #: Events verified in lockstep during the replay leg.
    replay_events_verified: int = 0
    #: Virtual time re-executed between the anchor and the target — the
    #: replay distance this revive paid for (included in duration_us).
    replay_us: int = 0


class DemandPager:
    """Lazy page loader for a demand-paged revive.

    The paper notes: "The uncached performance could be improved by demand
    paging; the current revive implementation requires reading in all
    necessary checkpoint data into memory before reviving" (section 6).
    This implements that improvement: at revive time regions are mapped but
    left empty and write-protected with the checkpoint flag; the first
    touch of each page faults, and the pager fetches just that page from
    the owning image.

    Reads are random (one seek per fault when cold), so total I/O time is
    worse than the eager sequential read — the classic latency-vs-
    throughput trade demand paging makes.
    """

    def __init__(self, manager, page_owner, images, cached):
        self._manager = manager
        self._page_owner = page_owner  # key -> owning image id
        self._images = images  # image id -> loaded image (grows lazily)
        self._cached = cached
        self._m_faults = manager.telemetry.metrics.counter(
            "revive.demand_faults")
        self.faults = 0
        self.pages_loaded = 0
        #: Page bytes streamed in by faults so far — the demand-paged
        #: complement of the eager path's up-front ``bytes_read``.
        self.bytes_streamed = 0

    def remaining(self):
        return len(self._page_owner)

    def make_handler(self, vpid):
        def handler(region, page_index):
            self.fault(vpid, region, page_index)

        return handler

    def fault(self, vpid, region, page_index):
        """Service one demand-paging fault."""
        key = (vpid, region.start, page_index)
        owner_id = self._page_owner.pop(key, None)
        if owner_id is None:
            return  # already resident (or never checkpointed)
        costs = self._manager.costs
        clock = self._manager.clock
        if owner_id not in self._images:
            # First touch of this image: read its metadata record only.
            self._images[owner_id] = self._manager.storage.load(
                owner_id, cached=self._cached, metadata_only=True,
                clock=clock,
            )
        # Resolve the payload: inline for v2 images, via the manifest
        # digest into the content-addressed page store for v3.
        owner = self._images[owner_id]
        content = owner.pages.get(key)
        if content is None:
            digest = owner.page_digests.get(key)
            if digest is not None:
                content = self._manager.storage.cas_page(digest)
        # One page-sized random read from the image file / page store.
        page_len = len(content) if content is not None else 4096
        if self._cached:
            clock.advance_us(page_len * costs.memcpy_us_per_byte)
        else:
            clock.advance_us(costs.disk_read_us(page_len, sequential=False))
        if content is None:
            raise ReviveError("page %r missing from image %d" % (key, owner_id))
        region.pages[page_index] = content
        clock.advance_us(costs.page_restore_us)
        self.faults += 1
        self.pages_loaded += 1
        self.bytes_streamed += page_len
        self._m_faults.inc()
        # Faulted bytes accrue to the revive read counter as they
        # stream — the fork itself charged only metadata.
        self._manager._m_bytes.inc(page_len)

    def touch_all(self):
        """Fault in every remaining page (used by tests/benchmarks to
        compare total demand-paged cost against the eager path)."""
        container_pages = list(self._page_owner)
        for vpid, region_start, page_index in container_pages:
            process = self._by_vpid.get(vpid)
            if process is None:
                continue
            region = process.address_space.find_region(region_start)
            self.fault(vpid, region, page_index)

    def bind(self, by_vpid):
        self._by_vpid = dict(by_vpid)


class ReviveManager:
    """Revives checkpoints into fresh containers."""

    def __init__(self, kernel, fsstore, storage, telemetry=None,
                 replay=None):
        self.kernel = kernel
        self.fsstore = fsstore
        self.storage = storage
        self.clock = kernel.clock
        self.costs = kernel.costs
        #: Replay tap for *branch forks*: revive-time nondeterminism
        #: (socket resets, the fresh container identity) is logged as
        #: events so replay verifies it instead of re-deriving it.
        #: Solo revives keep the null tap — their recordings are closed
        #: by the time ``take_me_back`` runs.
        self.replay = resolve_tap(replay)
        #: Override for :meth:`revive_thinned`'s driver rebuild —
        #: ``factory(meta, capture) -> driver``.  Recordings of bespoke
        #: scripts (no scenario metadata) set this so ``take_me_back``
        #: can replay-revive their thinned instants.
        self.replay_driver_factory = None
        self.telemetry = resolve_telemetry(telemetry)
        metrics = self.telemetry.metrics
        self._m_revives = metrics.counter("revive.count")
        self._m_pages = metrics.counter("revive.pages_restored")
        self._m_bytes = metrics.counter("revive.bytes_read")
        self._m_duration = metrics.histogram("revive.duration_us")
        self._m_replays = metrics.counter("revive.replays")
        self._m_replay_us = metrics.histogram("revive.replay_us")
        self._revive_count = 0

    def revive(self, checkpoint_id, cached=None, network_enabled=False,
               demand_paging=False):
        """Revive ``checkpoint_id``; returns a :class:`ReviveResult`.

        ``cached`` forces the hot (True) or cold (False) read path;
        ``None`` uses the storage's actual cache state.  The revived
        container starts with network access disabled unless overridden
        (section 5.2).

        ``demand_paging=True`` implements the improvement section 6
        suggests: the session becomes usable immediately with empty,
        fault-on-touch regions, and pages stream in lazily as the revived
        applications touch them.  Revive *latency* drops dramatically;
        total I/O is higher (random page-sized reads).
        """
        with self.telemetry.span("revive", checkpoint_id=checkpoint_id,
                                 demand_paging=demand_paging) as span:
            result = self._revive(checkpoint_id, cached, network_enabled,
                                  demand_paging)
            span.set("pages_restored", result.pages_restored)
            span.set("bytes_read", result.bytes_read)
        self._m_revives.inc()
        self._m_pages.inc(result.pages_restored)
        self._m_bytes.inc(result.bytes_read)
        self._m_duration.observe(result.duration_us)
        return result

    def revive_thinned(self, checkpoint_id, tombstone, log_data,
                       cached=None, network_enabled=False,
                       driver_factory=None):
        """Revive a THINNED instant by replaying forward from its anchor.

        The stored bytes of ``checkpoint_id`` are gone; its ``tombstone``
        names the nearest surviving earlier anchor and the fingerprints
        the re-derived state must match.  This restores nothing from the
        thinned image directly — it re-executes the recording
        (``log_data``) from the anchor in lockstep
        (:func:`repro.replay.replayer.replay_to_checkpoint`), verifies
        the reconstructed framebuffer SHA-1 and checkpoint fingerprint
        against the tombstone, and then revives the freshly re-derived
        checkpoint out of the replayed session's storage.  The returned
        :class:`ReviveResult` is marked ``replayed`` and its
        ``duration_us`` includes the replay distance.

        Raises :class:`ReviveError` — never a silent fallback — when the
        anchor is gone, the replay diverges or ends early, or a
        fingerprint mismatches the tombstone.
        """
        from repro.replay.replayer import replay_to_checkpoint

        anchor_id = tombstone.get("anchor_id")
        if (anchor_id is None or anchor_id not in self.storage
                or not self.storage.blob_ok(anchor_id)[0]):
            raise ReviveError(
                "thinned checkpoint %d has no surviving anchor "
                "(anchor %r)" % (checkpoint_id, anchor_id))
        if not log_data:
            raise ReviveError(
                "thinned checkpoint %d needs the recording's event log "
                "to replay" % checkpoint_id)
        if driver_factory is None:
            driver_factory = self.replay_driver_factory
        outcome = replay_to_checkpoint(
            log_data, checkpoint_id, from_checkpoint=anchor_id,
            driver_factory=driver_factory)
        if not outcome.ok:
            raise ReviveError(
                "replay-revive of thinned checkpoint %d failed: %s"
                % (checkpoint_id, outcome.describe()))
        expected_fp = tombstone.get("checkpoint_fp")
        if expected_fp and outcome.reached["checkpoint_fp"] != expected_fp:
            raise ReviveError(
                "replayed checkpoint %d fingerprint %s does not match "
                "its tombstone (%s)" % (
                    checkpoint_id, outcome.reached["checkpoint_fp"],
                    expected_fp))
        expected_fb = tombstone.get("framebuffer_sha1")
        if (expected_fb
                and outcome.reached["framebuffer_sha1"] != expected_fb):
            raise ReviveError(
                "replayed checkpoint %d framebuffer %s does not match "
                "its tombstone (%s)" % (
                    checkpoint_id, outcome.reached["framebuffer_sha1"],
                    expected_fb))
        # The replayed session's storage now holds a fingerprint-verified
        # re-creation of the thinned image; revive it from there.  The
        # replay distance is charged to this session's clock — the
        # re-execution is the price a thinned revive pays.
        result = outcome.dejaview.reviver.revive(
            checkpoint_id, cached=cached,
            network_enabled=network_enabled)
        self.clock.advance_us(outcome.replay_us)
        result.replayed = True
        result.replay_anchor_id = anchor_id
        result.replay_events_verified = outcome.events_verified
        result.replay_us = outcome.replay_us
        result.duration_us += outcome.replay_us
        self._m_replays.inc()
        self._m_replay_us.observe(outcome.replay_us)
        self._m_duration.observe(result.duration_us)
        return result

    def _revive(self, checkpoint_id, cached, network_enabled, demand_paging):
        watch = self.clock.stopwatch()
        # A branch fork revives out of *another* session's storage: reads
        # charge this reviver's clock, and the parent's cache state is
        # left alone (evicting it would perturb the parent's timeline).
        foreign = self.clock is not self.storage.clock
        if cached is False and not foreign:
            self.storage.evict_all()

        image = self.storage.load(checkpoint_id, cached=cached,
                                  metadata_only=demand_paging,
                                  clock=self.clock)
        images = {checkpoint_id: image}
        if demand_paging:
            # Only the metadata record was read at fork; page bytes are
            # accounted by the pager as faults stream them in.
            bytes_read = self.storage.metadata_size_of(checkpoint_id)
        else:
            bytes_read = self.storage.size_of(checkpoint_id)[0]

        self._revive_count += 1
        container = self.kernel.create_container(
            "%s-revived-%d" % (image.container_name, self._revive_count)
        )
        container.network_enabled = network_enabled

        # File system: branch the bound snapshot into a writable view
        # charging *this* reviver's clock (a fork must not advance the
        # parent session's timeline).
        mount = self.fsstore.branch_at(checkpoint_id, clock=self.clock,
                                       costs=self.costs)
        container.mount = mount

        # Process forest.
        reset_sockets = 0
        reset_records = []
        by_vpid = {}
        for record in image.processes:
            parent = by_vpid.get(record["parent_vpid"])
            process = container.spawn(
                record["name"],
                parent=parent,
                vpid=record["vpid"],
                uid=record["uid"],
                gid=record["gid"],
                nice=record["nice"],
            )
            reset_sockets += self._restore_process_state(
                process, record, reset_records)
            by_vpid[record["vpid"]] = process
            self.clock.advance_us(self.costs.process_state_restore_us)

        # Relinked files: reopen through the hidden entry, then unlink it,
        # "restoring the state to what it was at the time of the
        # checkpoint" (section 5.1.2).
        for vpid, fd_num, target in image.relinked_files:
            process = by_vpid.get(vpid)
            if process is None:
                continue
            entry = process.open_files.get(fd_num)
            if entry is not None:
                entry.unlinked = True
            if mount.exists(target):
                mount.unlink(target)

        # Memory: recreate regions, then either eagerly restore every
        # resident page from the incremental chain or arm demand paging.
        self._map_regions(image, by_vpid)
        pager = None
        if demand_paging:
            pager = DemandPager(self, dict(image.page_locations), images,
                                cached)
            pager.bind(by_vpid)
            for vpid, process in by_vpid.items():
                process.address_space.set_demand_handler(
                    pager.make_handler(vpid)
                )
            pages_restored, chain_bytes = 0, 0
        else:
            pages_restored, chain_bytes = self._restore_memory(
                image, images, by_vpid, cached
            )
        bytes_read += chain_bytes

        # Resume all processes.
        for process in container.live_processes():
            process.state = ProcessState.RUNNABLE

        # Branch-fork nondeterminism is *logged*, never re-derived: the
        # fresh container identity and every section 5.2 socket reset
        # become replay events that a re-fork must reproduce verbatim.
        if self.replay.active:
            self.replay.input_event("revive.fork", {
                "checkpoint_id": checkpoint_id,
                "container": container.name,
                "processes": len(by_vpid),
                "reset_sockets": reset_sockets,
            })
            for app, proto, local, remote, internal in reset_records:
                self.replay.socket(app, proto, local, remote, internal)

        result = ReviveResult(
            container=container,
            checkpoint_id=checkpoint_id,
            duration_us=watch.elapsed_us,
            images_accessed=len(images),
            pages_restored=pages_restored,
            bytes_read=bytes_read,
            cached=bool(cached) if cached is not None else True,
            reset_sockets=reset_sockets,
            processes=len(by_vpid),
            demand_paged=demand_paging,
            pages_deferred=pager.remaining() if pager else 0,
            required_images=tuple(sorted(
                {checkpoint_id} | set(image.page_locations.values()))),
        )
        result.pager = pager
        return result

    # ------------------------------------------------------------------ #

    def _restore_process_state(self, process, record, reset_records=None):
        """Restore the non-memory state vector; returns sockets reset.
        Reset socket descriptors are appended to ``reset_records`` for
        replay logging."""
        from repro.vex.process import FileDescriptor, Thread

        process.pending_signals = list(record["pending_signals"])
        process.blocked_signals = set(record["blocked_signals"])
        # JSON stringifies integer keys; restore them.
        process.signal_handlers = {
            int(signum): handler
            for signum, handler in record["signal_handlers"].items()
        }
        process.groups = list(record["groups"])
        process.ptraced_by = record["ptraced_by"]
        process.cwd = record["cwd"]
        process.threads = [Thread.from_snapshot(t) for t in record["threads"]]
        reset = 0
        for fd_record in record["open_files"]:
            socket = None
            if fd_record.get("socket") is not None:
                socket = Socket.from_snapshot(fd_record["socket"])
                if not socket.restore_for_revive():
                    reset += 1
                    if reset_records is not None:
                        reset_records.append((
                            process.name, socket.proto, socket.local,
                            socket.remote, socket.internal))
            entry = FileDescriptor(
                fd=fd_record["fd"],
                kind=fd_record["kind"],
                path=fd_record["path"],
                inode=fd_record["inode"],
                offset=fd_record["offset"],
                flags=fd_record["flags"],
                socket=socket,
            )
            entry.unlinked = fd_record["unlinked"]
            process.open_files[entry.fd] = entry
            process._next_fd = max(process._next_fd, entry.fd + 1)
        return reset

    def _map_regions(self, image, by_vpid):
        """Recreate every checkpointed VM region (empty)."""
        for vpid, region_records in image.regions.items():
            process = by_vpid.get(vpid)
            if process is None:
                raise ReviveError("image references unknown vpid %d" % vpid)
            for record in region_records:
                process.address_space.map_fixed(
                    record["start"],
                    record["npages"],
                    record["prot"],
                    record["name"],
                )

    def _restore_memory(self, image, images, by_vpid, cached):
        """Fill every resident page, walking the incremental chain.

        "This process then continues reading from the current checkpoint
        image, reiterating this sequence as necessary, until the complete
        state of the desktop session has been reinstated" (section 5.2).
        """
        # Group needed pages by the image that holds their latest copy.
        by_owner = {}
        for key, owner_id in image.page_locations.items():
            by_owner.setdefault(owner_id, []).append(key)

        pages_restored = 0
        chain_bytes = 0
        for owner_id in sorted(by_owner, reverse=True):
            if owner_id not in images:
                images[owner_id] = self.storage.load(owner_id, cached=cached,
                                                     clock=self.clock)
                chain_bytes += self.storage.size_of(owner_id)[0]
            owner = images[owner_id]
            for key in by_owner[owner_id]:
                content = owner.pages.get(key)
                if content is None:
                    raise ReviveError(
                        "page %r missing from image %d" % (key, owner_id)
                    )
                vpid, region_start, page_index = key
                process = by_vpid[vpid]
                region = process.address_space.find_region(region_start)
                if region is None:
                    raise ReviveError(
                        "page %r references unmapped region" % (key,)
                    )
                region.pages[page_index] = content
                pages_restored += 1
        self.clock.advance_us(pages_restored * self.costs.page_restore_us)
        return pages_restored, chain_bytes
