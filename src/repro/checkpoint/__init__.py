"""Continuous checkpoint/revive machinery (paper section 5).

This is DejaView's primary systems contribution: checkpointing a live,
multi-process desktop session once per second with milliseconds of downtime,
and reviving any past checkpoint into an independent, fully interactive
session.

* :mod:`repro.checkpoint.image` -- the checkpoint image format: process
  state records, memory region metadata, saved pages, and the page-location
  directory that makes incremental chains revivable.
* :mod:`repro.checkpoint.storage` -- simulated checkpoint storage with
  cached/uncached read paths (Figure 7 contrasts the two).
* :mod:`repro.checkpoint.engine` -- the checkpoint engine: pre-snapshot,
  pre-quiesce, quiesce, COW capture, file system snapshot, deferred
  writeback; every optimization is individually toggleable for the
  ablation benchmarks.
* :mod:`repro.checkpoint.restore` -- revive: rebuild the process forest in
  a fresh namespace, restore memory across the incremental chain, branch
  the file system, reset external sockets.
* :mod:`repro.checkpoint.policy` -- the display-driven checkpoint policy
  (section 5.1.3).
"""

from repro.checkpoint.engine import (
    CheckpointEngine,
    CheckpointResult,
    EngineOptions,
)
from repro.checkpoint.gc import PruneReport, prune_checkpoints, required_images
from repro.checkpoint.image import CheckpointImage
from repro.checkpoint.policy import CheckpointPolicy, PolicyConfig, PolicyDecision
from repro.checkpoint.restore import DemandPager, ReviveManager, ReviveResult
from repro.checkpoint.storage import CheckpointStorage
from repro.checkpoint.verify import VerifyReport, verify_chain

__all__ = [
    "CheckpointImage",
    "CheckpointStorage",
    "CheckpointEngine",
    "CheckpointResult",
    "EngineOptions",
    "ReviveManager",
    "ReviveResult",
    "DemandPager",
    "CheckpointPolicy",
    "PolicyConfig",
    "PolicyDecision",
    "prune_checkpoints",
    "required_images",
    "PruneReport",
    "verify_chain",
    "VerifyReport",
]
