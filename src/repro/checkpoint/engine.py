"""The checkpoint engine (sections 5.1.1 and 5.1.2).

The engine runs as a privileged actor outside the container and takes a
globally consistent checkpoint in four steps: quiesce, save execution
state, snapshot the file system, resume.  Around that core it implements
every optimization the paper describes, each individually toggleable so the
ablation benchmark can reproduce the paper's claim that "the unoptimized
mechanism was too slow to checkpoint at the once a second rate":

Shifting I/O out of the downtime window
    * ``pre_snapshot`` — sync the file system *before* quiescing, so the
      in-downtime snapshot has (almost) nothing left to flush.
    * ``pre_quiesce`` — wait (bounded) until every process can act on a
      stop signal, so one process stuck in disk I/O does not stretch the
      stopped window.
    * ``defer_writeback`` — buffer the checkpoint image in memory and
      write it to disk only after the session has resumed.

Reducing in-downtime work
    * ``use_cow`` — instead of copying memory while stopped, write-protect
      the saved pages and let post-resume write faults produce the copies
      lazily.
    * relinking — open-but-unlinked files get a hidden directory entry so
      the file system snapshot preserves their contents and the checkpoint
      image does not have to.
    * ``use_incremental`` — only pages dirtied since the previous
      checkpoint are saved; full checkpoints recur every
      ``full_checkpoint_interval`` checkpoints for redundancy.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.errors import CheckpointError, FileSystemError
from repro.common.telemetry import resolve_telemetry
from repro.common.units import ms
from repro.checkpoint.image import CheckpointImage
from repro.vex.process import ProcessState


@dataclass
class EngineOptions:
    """Toggles for the section 5.1.2 optimizations (all on by default)."""

    use_cow: bool = True
    use_incremental: bool = True
    defer_writeback: bool = True
    pre_snapshot: bool = True
    pre_quiesce: bool = True
    pre_quiesce_timeout_us: int = ms(100)
    full_checkpoint_interval: int = 1000
    """Take a full checkpoint every N checkpoints ("a full checkpoint every
    thousand incremental ones only incurs an additional 1% storage
    overhead")."""


@dataclass
class CheckpointResult:
    """Timings and sizes of one checkpoint (the Figure 3 / 4 quantities)."""

    checkpoint_id: int
    timestamp_us: int
    full: bool
    pre_snapshot_us: int = 0
    pre_quiesce_us: int = 0
    quiesce_us: int = 0
    capture_us: int = 0
    fs_snapshot_us: int = 0
    writeback_us: int = 0
    saved_pages: int = 0
    process_count: int = 0
    image_bytes: int = 0
    image_bytes_compressed: int = 0
    bytes_written: int = 0
    pages_deduped: int = 0
    dedup_bytes_saved: int = 0
    writeback_backlog_bytes: int = 0
    """Bytes still queued (un-flushed) in the page store's append queues
    when this checkpoint's writeback returned.  Always 0 for synchronous
    writeback (the store force-flushes at manifest commit); under async
    group commit the backlog drains on the service clock instead."""

    @property
    def pre_checkpoint_us(self):
        """The paper's "pre-checkpoint" bar: pre-snapshot + pre-quiesce."""
        return self.pre_snapshot_us + self.pre_quiesce_us

    @property
    def downtime_us(self):
        """Time processes are stopped: quiesce + capture + fs snapshot.
        (With deferred writeback, writeback overlaps execution; without
        it, the writeback time lands inside the stopped window and is
        included here by the engine.)"""
        return self.quiesce_us + self.capture_us + self.fs_snapshot_us

    @property
    def total_us(self):
        return self.pre_checkpoint_us + self.downtime_us + self.writeback_us


class CheckpointEngine:
    """Continuously checkpoints one container."""

    def __init__(self, kernel, container, fsstore, storage, options=None,
                 telemetry=None):
        self.kernel = kernel
        self.container = container
        self.fsstore = fsstore
        self.storage = storage
        self.options = options if options is not None else EngineOptions()
        self.clock = kernel.clock
        self.costs = kernel.costs
        self.telemetry = resolve_telemetry(telemetry)
        metrics = self.telemetry.metrics
        self._m_checkpoints = metrics.counter("checkpoint.count")
        self._m_full = metrics.counter("checkpoint.full_count")
        self._m_pages = metrics.counter("checkpoint.pages_saved")
        self._m_cow_faults = metrics.counter("checkpoint.cow_faults")
        self._m_bytes = metrics.counter("checkpoint.image_bytes")
        self._m_downtime = metrics.histogram("checkpoint.downtime_us")
        self._m_total = metrics.histogram("checkpoint.total_us")
        self._m_backlog = metrics.histogram("checkpoint.writeback_backlog")
        self._next_id = 1
        self._last_image_id = None
        self._checkpoints_since_full = 0
        #: Running page-location directory (key -> image id of latest copy).
        self._page_locations = {}
        #: COW copies taken by write faults between resume and writeback.
        self._cow_pending = {}
        self._capture_keys = None  # keys being captured, during COW window
        self._recent_buffer_sizes = deque(maxlen=5)
        self.history = []
        self._install_fault_handlers()
        # Interpose on process creation: each fork pays tracking overhead
        # while checkpointing is active, and gets its fault handler wired
        # immediately.
        container.spawn_listeners.append(self._on_spawn)

    def _on_spawn(self, process):
        self.clock.advance_us(self.costs.fork_interpose_us)
        process.address_space.set_fault_handler(
            self._make_handler(process.vpid)
        )

    # ------------------------------------------------------------------ #
    # COW fault path

    def _install_fault_handlers(self):
        for process in self.container.live_processes():
            space = process.address_space
            space.set_fault_handler(self._make_handler(process.vpid))

    def _make_handler(self, vpid):
        def handler(region, page_index):
            # Service one COW fault: copy the still-original page content
            # into the pending buffer, then the address space clears the
            # flag and lets the write proceed.
            key = (vpid, region.start, page_index)
            if self._capture_keys is not None and key in self._capture_keys:
                self._cow_pending.setdefault(key, region.page_content(page_index))
            self._m_cow_faults.inc()
            self.clock.advance_us(self.costs.cow_fault_us)

        return handler

    # ------------------------------------------------------------------ #
    # The checkpoint pipeline

    def checkpoint(self, on_resumed=None):
        """Take one checkpoint; returns a :class:`CheckpointResult`.

        ``on_resumed`` (optional) is invoked after the session resumes and
        before the deferred writeback — the window in which application
        writes hit COW-protected pages and get captured lazily.  Tests and
        workloads use it to exercise that path; the default is to write
        back immediately.
        """
        opts = self.options
        clock = self.clock
        container = self.container
        telemetry = self.telemetry
        checkpoint_id = self._next_id
        self._next_id += 1

        result = CheckpointResult(
            checkpoint_id=checkpoint_id,
            timestamp_us=clock.now_us,
            full=False,
        )

        with telemetry.span("checkpoint", checkpoint_id=checkpoint_id) as ckpt_span:
            # Phase 0a: pre-snapshot file system sync (outside downtime).
            if opts.pre_snapshot:
                with telemetry.span("checkpoint.pre_snapshot"):
                    watch = clock.stopwatch()
                    self.fsstore.pre_snapshot_sync()
                    result.pre_snapshot_us = watch.elapsed_us

            # Phase 0b: pre-quiesce — wait for uninterruptible processes.
            if opts.pre_quiesce:
                with telemetry.span("checkpoint.pre_quiesce"):
                    watch = clock.stopwatch()
                    deadline = clock.now_us + opts.pre_quiesce_timeout_us
                    while not container.all_signalable(clock.now_us):
                        pending = [
                            p.busy_until_us
                            for p in container.live_processes()
                            if not p.signalable(clock.now_us)
                        ]
                        target = min(min(pending), deadline)
                        clock.advance_to_us(target)
                        if clock.now_us >= deadline:
                            break
                    result.pre_quiesce_us = watch.elapsed_us

            # Phase 1: quiesce (downtime begins here).
            with telemetry.span("checkpoint.quiesce"):
                watch = clock.stopwatch()
                self.kernel.stop_all(container)
                # Processes still in uninterruptible sleep stop only when
                # their operation completes; without pre-quiesce this wait
                # is *in* the stopped window and the user feels it.
                for process in container.live_processes():
                    while process.state is not ProcessState.STOPPED:
                        clock.advance_to_us(process.busy_until_us)
                        clock.advance_us(self.costs.context_switch_us)
                        process.flush_pending_signals(clock.now_us)
                result.quiesce_us = watch.elapsed_us

            # Phase 2: capture execution state.
            full = (
                not opts.use_incremental
                or self._last_image_id is None
                or self._checkpoints_since_full >= opts.full_checkpoint_interval
            )
            result.full = full
            with telemetry.span("checkpoint.capture", full=full):
                watch = clock.stopwatch()
                image = CheckpointImage(
                    checkpoint_id=checkpoint_id,
                    timestamp_us=clock.now_us,
                    container_name=container.name,
                    parent_id=None if full else self._last_image_id,
                    full=full,
                )
                save_keys = self._capture(image, full)
                result.saved_pages = len(save_keys)
                result.process_count = len(image.processes)
                result.capture_us = watch.elapsed_us

            # Phase 3: file system snapshot, bound to this checkpoint.
            with telemetry.span("checkpoint.fs_snapshot"):
                watch = clock.stopwatch()
                image.fs_txn = self.fsstore.take_snapshot(checkpoint_id)
                result.fs_snapshot_us = watch.elapsed_us

            if not opts.defer_writeback:
                # Unoptimized: the image is written while processes are
                # stopped, and the disk time lands in the downtime window.
                with telemetry.span("checkpoint.writeback", deferred=False):
                    watch = clock.stopwatch()
                    self._writeback(image, save_keys, result, deferred=False)
                    result.capture_us += watch.elapsed_us

            # Phase 4: resume.
            self.kernel.continue_all(container)

            if on_resumed is not None and opts.defer_writeback:
                on_resumed()

            if opts.defer_writeback:
                with telemetry.span("checkpoint.writeback", deferred=True):
                    self._writeback(image, save_keys, result, deferred=True)

            ckpt_span.set("full", full)
            ckpt_span.set("saved_pages", result.saved_pages)

        self._last_image_id = checkpoint_id
        self._checkpoints_since_full = 0 if full else self._checkpoints_since_full + 1
        self.history.append(result)
        self._m_checkpoints.inc()
        if full:
            self._m_full.inc()
        self._m_pages.inc(result.saved_pages)
        self._m_bytes.inc(result.image_bytes)
        self._m_downtime.observe(result.downtime_us)
        self._m_total.observe(result.total_us)
        return result

    # ------------------------------------------------------------------ #
    # Capture internals

    def _capture(self, image, full):
        """Record process/region state and select pages to save.

        Returns the set of page keys this image will contain.  With COW the
        page *contents* are not read here — only protection bits flip —
        which is what keeps the stopped window small.
        """
        opts = self.options
        container = self.container
        save_keys = set()
        self._install_fault_handlers()  # new processes since last time

        for process in container.live_processes():
            self.clock.advance_us(self.costs.process_state_save_us)
            image.processes.append(self._process_record(process))

            # Relink open-unlinked files so the fs snapshot keeps their
            # contents out of the checkpoint image (section 5.1.2, opt 2).
            for fd in process.open_files.values():
                if fd.kind == "file" and fd.unlinked and fd.inode is not None:
                    try:
                        target = self.fsstore.fs.relink_inode(fd.inode)
                    except FileSystemError:
                        # The inode lives in a read-only lower layer of a
                        # revived session's mount; lower layers are
                        # immutable, so the content is preserved anyway.
                        continue
                    if target is not None:
                        image.relinked_files.append((process.vpid, fd.fd, target))

            space = process.address_space
            regions = space.regions()
            self.clock.advance_us(len(regions) * self.costs.region_metadata_us)
            image.regions[process.vpid] = [
                r.clone_for_checkpoint() for r in regions
            ]
            for region in regions:
                if full:
                    pages = sorted(region.pages)
                else:
                    pages = sorted(region.dirty & set(region.pages))
                self.clock.advance_us(len(region.pages) * self.costs.page_scan_us)
                for page_index in pages:
                    save_keys.add((process.vpid, region.start, page_index))

                if opts.use_cow:
                    # Write-protect the pages being saved; unmodified pages
                    # from earlier checkpoints are still protected.
                    to_protect = pages if not full else sorted(region.pages)
                    for page_index in to_protect:
                        region.ckpt_flagged.add(page_index)
                    self.clock.advance_us(
                        self.costs.protect_pages_us(len(to_protect))
                    )
                else:
                    # Stop-and-copy: read the contents inside the downtime.
                    for page_index in pages:
                        key = (process.vpid, region.start, page_index)
                        image.pages[key] = region.page_content(page_index)
                    self.clock.advance_us(self.costs.copy_pages_us(len(pages)))
                region.dirty.clear()

        # Update the running page-location directory.
        resident = self._resident_keys()
        if full:
            self._page_locations = {key: image.checkpoint_id for key in resident}
        else:
            self._page_locations = {
                key: owner
                for key, owner in self._page_locations.items()
                if key in resident
            }
            for key in save_keys:
                self._page_locations[key] = image.checkpoint_id
            missing = resident - set(self._page_locations)
            if missing:
                # Pages resident but never saved (e.g. created and written
                # between dirty-clear and now) — save them in this image.
                for key in missing:
                    save_keys.add(key)
                    self._page_locations[key] = image.checkpoint_id
        image.page_locations = dict(self._page_locations)
        self._capture_keys = save_keys if opts.use_cow else None
        return save_keys

    def _resident_keys(self):
        keys = set()
        for process in self.container.live_processes():
            for region in process.address_space.regions():
                for page_index in region.pages:
                    keys.add((process.vpid, region.start, page_index))
        return keys

    def _process_record(self, process):
        state = process._resume_state or ProcessState.RUNNABLE
        return {
            "vpid": process.vpid,
            "parent_vpid": process.parent.vpid if process.parent else None,
            "name": process.name,
            "state": state.value,
            "nice": process.nice,
            "uid": process.uid,
            "gid": process.gid,
            "groups": list(process.groups),
            "pending_signals": list(process.pending_signals),
            "blocked_signals": sorted(process.blocked_signals),
            "signal_handlers": dict(process.signal_handlers),
            "threads": [t.snapshot() for t in process.threads],
            "ptraced_by": process.ptraced_by,
            "cwd": process.cwd,
            "open_files": [fd.snapshot() for fd in process.open_files.values()],
        }

    # ------------------------------------------------------------------ #
    # Writeback

    def _writeback(self, image, save_keys, result, deferred=True):
        """Assemble page contents (resolving COW) and write the image.

        Deferred writeback overlaps application execution ("DejaView defers
        writing the persistent checkpoint image to disk until after the
        session has been resumed ... the checkpoint is first held in memory
        buffers"): the disk transfer runs in the background, so only the
        buffer-assembly CPU time lands on the session clock, while the full
        transfer duration is reported as the Figure 3 "writeback" bar.
        Synchronous writeback (the ablation) charges everything inline —
        inside the stopped window, which is precisely why it is too slow
        for 1 Hz checkpointing.

        When the underlying page store runs in async group-commit mode
        (fleet service), ``store`` only *enqueues* the physical page
        appends and returns — the stopped window and the session clock
        never include storage work at all; the service flushes shard
        queues on its own clock and ``drain()`` is the only barrier.
        """
        if self.options.use_cow:
            for key in sorted(save_keys):
                if key in image.pages:
                    continue
                content = self._cow_pending.pop(key, None)
                if content is None:
                    content = self._read_live_page(key)
                image.pages[key] = content
            # Copying the (still pristine) pages into the write buffer.
            self.clock.advance_us(self.costs.copy_pages_us(len(save_keys)))
            self._capture_keys = None
            self._cow_pending.clear()
        result.image_bytes = image.nbytes
        if deferred:
            receipt = self.storage.store(image, charge_time=False)
            duration = self.costs.disk_write_us(
                receipt.accounted_bytes, sequential=True)
            if self.storage.compress:
                duration += self.costs.compress_us(image.nbytes)
            result.writeback_us = int(duration)
        else:
            receipt = self.storage.store(image, charge_time=True)
            result.writeback_us = 0  # included in the downtime instead
        result.bytes_written = receipt.accounted_bytes
        result.pages_deduped = receipt.pages_deduped
        result.dedup_bytes_saved = receipt.dedup_bytes_saved
        # Pipelined writeback: under async group commit the store only
        # enqueued the pages — record how deep the queue is so backlog
        # growth is visible per checkpoint (always 0 in sync mode).
        result.writeback_backlog_bytes = getattr(
            self.storage, "writeback_backlog_bytes", 0)
        self._m_backlog.observe(result.writeback_backlog_bytes)
        _unc, comp = self.storage.size_of(image.checkpoint_id)
        result.image_bytes_compressed = comp
        self._recent_buffer_sizes.append(image.nbytes)

    def _read_live_page(self, key):
        vpid, region_start, page_index = key
        process = self.container.namespace.lookup_vpid(vpid)
        region = process.address_space.find_region(region_start)
        if region is None or region.start != region_start:
            raise CheckpointError(
                "region %#x vanished before writeback (vpid %d); the "
                "munmap happened between resume and writeback" % (region_start, vpid)
            )
        return region.page_content(page_index)

    # ------------------------------------------------------------------ #

    @property
    def estimated_buffer_bytes(self):
        """Preallocation estimate: average of recent checkpoint sizes
        (section 5.1.2: "DejaView estimates the size of the buffer based on
        the average amount of buffer space actually used for recent
        checkpoints")."""
        if not self._recent_buffer_sizes:
            return 4 * 1024 * 1024  # a sane initial guess
        return int(
            sum(self._recent_buffer_sizes) / len(self._recent_buffer_sizes)
        )

    @property
    def last_checkpoint_id(self):
        return self._last_image_id

    def recover_after_crash(self):
        """Resynchronize with storage after crash recovery dropped images.

        The running page-location directory (and the incremental parent
        pointer) may reference images that storage recovery deleted, which
        would poison every later incremental checkpoint with dangling
        locations.  Reset them so the next checkpoint is a self-contained
        full image, drop crashed entries from history, and clear any
        in-flight COW capture state the crash interrupted.
        """
        stored = set(self.storage.stored_ids())
        # THINNED instants keep their place on the timeline: the
        # tombstone makes them revivable by replay, so history retains
        # them even though their bytes are gone.
        thinner = getattr(self.storage, "thinned_ids", None)
        keep = stored | (set(thinner()) if thinner is not None else set())
        removed = [r for r in self.history
                   if r.checkpoint_id not in keep]
        self.history = [r for r in self.history
                        if r.checkpoint_id in keep]
        # The incremental parent must be a *stored* image (thinned
        # parents have no pages to chain from); recovery forces the next
        # checkpoint full anyway, but keep the pointer honest.
        last_stored = [r.checkpoint_id for r in self.history
                       if r.checkpoint_id in stored]
        self._last_image_id = last_stored[-1] if last_stored else None
        self._page_locations = {}
        self._checkpoints_since_full = self.options.full_checkpoint_interval
        self._capture_keys = None
        self._cow_pending.clear()
        return {"history_dropped": [r.checkpoint_id for r in removed]}

    def average_downtime_us(self):
        if not self.history:
            return 0.0
        return sum(r.downtime_us for r in self.history) / len(self.history)
