"""Checkpoint policy (section 5.1.3).

"Given the bursty nature of desktops ... the naive approach of taking
checkpoints at regular intervals is suboptimal."  DejaView instead
checkpoints *in response to display updates*, with:

* a rate limit of at most one checkpoint per second by default;
* skips while certain applications are active full screen with no user
  input (screensaver, full-screen video);
* skips while display activity stays below a threshold (default 5 % of the
  screen) — blinking cursors, clocks, mouse movement;
* an exception for keyboard input: even with low display activity,
  checkpoints continue during text editing, rate-limited to one every ten
  seconds ("roughly every 7 words" for a 40 wpm typist);
* user-extensible custom rules (the paper's example: skip when system load
  is high).

The policy is a pure decision function over a :class:`PolicyContext`; the
desktop orchestrator feeds it the display driver's activity stats each
tick.  Decisions carry a *reason* so the effectiveness benchmark can
reproduce the paper's skip breakdown (13 % no display activity, 69 % low
display activity, 18 % text-edit rate limiting).
"""

from dataclasses import dataclass, field

from repro.common.errors import PolicyError
from repro.common.units import seconds

# Decision reason codes.
TAKE_DISPLAY = "display_activity"
TAKE_TEXT_EDIT = "text_edit"
SKIP_RATE_LIMIT = "rate_limit"
SKIP_NO_DISPLAY = "no_display_activity"
SKIP_LOW_DISPLAY = "low_display_activity"
SKIP_TEXT_RATE = "text_edit_rate"
SKIP_FULLSCREEN = "fullscreen_app"
SKIP_CUSTOM = "custom_rule"


@dataclass
class PolicyConfig:
    """Tunables — "the user may tune any of the parameters"."""

    min_interval_us: int = seconds(1)
    """At most one checkpoint per second by default."""

    low_activity_fraction: float = 0.05
    """Display changes below this screen fraction are 'trivial' (5 %)."""

    text_edit_interval_us: int = seconds(10)
    """Checkpoint rate during keyboard-driven low display activity."""

    skip_fullscreen_apps: bool = True
    """Skip while screensaver / full-screen video run without input."""


@dataclass
class PolicyContext:
    """Everything the policy looks at for one decision."""

    now_us: int
    display_activity: object  # DisplayActivity from the driver
    keyboard_input: bool = False
    mouse_input: bool = False
    fullscreen_video: bool = False
    screensaver: bool = False
    system_load: float = 0.0


@dataclass
class PolicyDecision:
    take: bool
    reason: str

    def __bool__(self):
        return self.take


@dataclass
class PolicyStats:
    """Counts per decision reason (for the effectiveness experiment)."""

    taken: dict = field(default_factory=dict)
    skipped: dict = field(default_factory=dict)

    def record(self, decision):
        bucket = self.taken if decision.take else self.skipped
        bucket[decision.reason] = bucket.get(decision.reason, 0) + 1

    @property
    def total_taken(self):
        return sum(self.taken.values())

    @property
    def total_skipped(self):
        return sum(self.skipped.values())

    @property
    def total(self):
        return self.total_taken + self.total_skipped

    def taken_fraction(self):
        return self.total_taken / self.total if self.total else 0.0

    def skip_fraction(self, reason):
        """Fraction of *skips* attributed to one reason (how the paper
        reports its 13 % / 69 % / 18 % breakdown)."""
        total = self.total_skipped
        return self.skipped.get(reason, 0) / total if total else 0.0


class CheckpointPolicy:
    """The decision engine.  Call :meth:`decide` once per candidate tick."""

    def __init__(self, config=None):
        self.config = config if config is not None else PolicyConfig()
        self._last_checkpoint_us = None
        self._custom_rules = []
        self.stats = PolicyStats()

    def add_rule(self, rule):
        """Register a custom rule: ``rule(context) -> bool-or-None``.

        Returning False vetoes the checkpoint (counted as SKIP_CUSTOM);
        True or None passes to the built-in rules.  Example from the
        paper: "disable checkpoints when the load of the computer rises
        above a certain level".
        """
        if not callable(rule):
            raise PolicyError("policy rules must be callable")
        self._custom_rules.append(rule)

    def decide(self, context):
        """Decide whether to checkpoint now; records stats either way."""
        decision = self._decide(context)
        self.stats.record(decision)
        if decision.take:
            self._last_checkpoint_us = context.now_us
        return decision

    def _decide(self, ctx):
        cfg = self.config
        for rule in self._custom_rules:
            if rule(ctx) is False:
                return PolicyDecision(False, SKIP_CUSTOM)

        activity = ctx.display_activity
        has_display = activity is not None and activity.command_count > 0
        since_last = (
            None
            if self._last_checkpoint_us is None
            else ctx.now_us - self._last_checkpoint_us
        )

        # Rule: full-screen special applications without user input.
        if cfg.skip_fullscreen_apps and (ctx.fullscreen_video or ctx.screensaver):
            if not (ctx.keyboard_input or ctx.mouse_input):
                return PolicyDecision(False, SKIP_FULLSCREEN)

        # Rule: nothing changed on screen at all.
        if not has_display and not ctx.keyboard_input:
            return PolicyDecision(False, SKIP_NO_DISPLAY)

        low_activity = (
            not has_display or activity.changed_fraction < cfg.low_activity_fraction
        )

        if low_activity:
            if ctx.keyboard_input:
                # Text editing: keep recording, but at the reduced rate.
                if since_last is not None and since_last < cfg.text_edit_interval_us:
                    return PolicyDecision(False, SKIP_TEXT_RATE)
                return PolicyDecision(True, TAKE_TEXT_EDIT)
            return PolicyDecision(False, SKIP_LOW_DISPLAY)

        # Significant display activity: checkpoint, rate-limited.
        if since_last is not None and since_last < cfg.min_interval_us:
            return PolicyDecision(False, SKIP_RATE_LIMIT)
        return PolicyDecision(True, TAKE_DISPLAY)
