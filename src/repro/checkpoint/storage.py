"""Checkpoint image storage.

A simulated disk for checkpoint images.  It charges the cost model for
writes and reads, tracks compressed and uncompressed sizes (Figure 4 shows
both), and models the page cache: a *cached* read costs a memory copy, an
*uncached* read costs seeks plus sequential transfer — the distinction
behind Figure 7's two revive series ("reviving using checkpoint files that
have been cached due to recent file access more commonly occurs when users
revive a session at a time relatively close to the current time").

Two on-disk layouts coexist:

* **Whole blob** (``page_store=False``, serial format v2) — each image is
  one monolithic zlib frame; identical pages shared across the chain are
  written and accounted once per checkpoint.
* **Content-addressed page store** (``page_store=True``, the default,
  serial format v3) — page payloads are stored once in a refcounted CAS
  keyed by SHA-1 digest and shared across every image that saved an
  identical page; images serialize as metadata plus a digest manifest.
  ``store`` dedups against live pages, ``delete`` decrements refcounts and
  reclaims only orphaned pages, and :meth:`compact` rewrites fragmented
  page extents after pruning.  v2 blobs injected into a CAS store remain
  readable (their pages are inline, so their manifest is empty).

Fleet mode: the CAS proper lives in a :class:`ShardedPageCAS` that any
number of ``CheckpointStorage`` instances — one per recording session —
may share (``CheckpointStorage(cas=shared, owner="session-name")``).
References are counted **per owner**: each owner's count is the number of
(image, key) references across that owner's live manifests, and a page is
physically reclaimed only when *every* owner's count is zero.  One session
crashing and recovering rebuilds only its own counts, so recovery can
never reclaim pages another session still references.

Sharded physical layout, global logical state: the CAS splits its
*physical* layout — extents and the append path — into K consistent-hash
shards keyed by page digest (``crc32(digest) % K``), while every
*logical* map (payloads, sizes, refcounts, owner refcounts) stays global
and shard-layout-agnostic.  v3 manifests name digests, never extents, so
the same store reopened with a different shard count (:meth:`reshard`)
serves identical reads and identical accounting.

Group-commit writeback: ``commit_page`` no longer appends to an extent
inline — it *enqueues* the append on the digest's shard.  A later
``flush_shard`` drains the shard's queue as one batched group commit.
Two writeback modes share that machinery:

* **sync** (the default, solo sessions): ``store`` force-flushes the
  touched shards before the manifest commit, so every durability point
  is exactly where it was before sharding — and the two flush failpoints
  (``storage.shard.flush``, ``storage.shard.group_commit``) fire on the
  session's own write path.
* **async** (``async_writeback=True``, the fleet): ``store`` enqueues
  and returns — the session never waits on storage.  The service flushes
  shards on its own clock (size-triggered group commits, a rollup-cadence
  sweep, backlog backpressure), and :meth:`drain` is the only barrier
  (delete/GC/compact/recover, fleet shutdown).  A queued page is already
  *logically* committed — readable, dedupable, refcountable — it just
  has no extent yet; crash recovery treats queued pages nobody references
  as lost in-flight writes and drops them.

Accounting under sharing: each storage's ``total_*_bytes`` stay **logical
to the owner** — manifests plus every unique page the owner references,
dedup'd against the owner's *own* pages only.  The shared CAS tracks the
**physical** totals (each page charged once fleet-wide) plus cross-owner
dedup counters; the gap between the sum of owner-logical totals and the
physical totals is exactly the fleet's cross-session dedup win.  Charging
the virtual clock also uses owner visibility, so what another session has
stored never changes this session's simulated timings — the property the
fleet's determinism contract (interleaved ≡ solo) rests on.  With a
private CAS (the default) there is a single owner, owner visibility equals
global visibility, and the accounting is bit-identical to the pre-fleet
behavior.

Host-side, payloads are kept zlib-compressed regardless of the
*accounting* mode, so long experiments stay memory-friendly.

Durability: each stored manifest/blob carries a fixed-size trailer —
magic, uncompressed length, compressed length, CRC-32 of the compressed
bytes — so a write torn by a crash (the ``storage.store.pre_commit``
failpoint) is detected on read instead of silently misdecoding.  The CAS
write path adds two more sites: ``storage.cas.page_append`` (crash leaves
a torn uncommitted page, with earlier pages committed but unreferenced)
and ``storage.cas.manifest_commit`` (crash strands freshly committed
pages as orphans).  :meth:`recover` is a full fsck: it drops torn frames,
discards torn/corrupt CAS pages, drops manifests with dangling digests,
rebuilds this owner's refcounts from the surviving manifests, reclaims
globally orphaned pages, repairs the chain with
:func:`repro.checkpoint.verify.verify_chain` to a fixpoint, and recomputes
the totals.  ``store`` stays transactional for *transient* faults: an
:class:`InjectedFault` rolls back every page committed by that call, so a
failed store leaves the totals untouched (and never double-counts on
retry).
"""

import hashlib
import json
import struct
import zlib

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import CheckpointError, SnapshotError
from repro.common.faults import InjectedCrash, InjectedFault, resolve_faults
from repro.common.telemetry import resolve_telemetry
from repro.checkpoint.image import (
    CheckpointImage,
    FORMAT_VERSION_MANIFEST,
    page_digest,
)

#: Blob trailer: magic, uncompressed length, compressed length, CRC-32 of
#: the compressed payload.  Written after the payload, so a torn write is
#: missing (or truncating) it — exactly how it is detected.
_TRAILER = struct.Struct("<4sIII")
TRAILER_MAGIC = b"DJCK"

FP_STORE_PRE_COMMIT = "storage.store.pre_commit"
FP_CAS_PAGE_APPEND = "storage.cas.page_append"
FP_CAS_MANIFEST_COMMIT = "storage.cas.manifest_commit"
FP_SHARD_FLUSH = "storage.shard.flush"
FP_SHARD_GROUP_COMMIT = "storage.shard.group_commit"
FP_BRANCH_REFS = "revive.branch.refs"
FP_THIN_TOMBSTONE = "thin.tombstone"
FP_THIN_DROP_REFS = "thin.drop_refs"

#: TLV stream kind for serialized THINNED tombstone records (the golden
#: fixture format): one ``REC_THIN_TOMBSTONE`` per tombstone plus an
#: optional embedded replay-log segment that re-derives them.
STREAM_KIND_THIN = 0x7417
REC_THIN_TOMBSTONE = 0x01
REC_THIN_LOG = 0x02

#: CAS pages are appended to fixed-size extents (compressed bytes).  A
#: reclaimed page leaves dead bytes in its extent;
#: :meth:`ShardedPageCAS.compact` rewrites extents whose dead fraction
#: crosses the threshold.
EXTENT_TARGET_BYTES = 256 * 1024
DEFAULT_DEAD_FRACTION = 0.25

#: Solo sessions keep one shard: the physical layout (extent ids, append
#: order) is then byte-for-byte what the unsharded store produced.
DEFAULT_SHARDS = 1

#: Async group commit: a shard whose queue holds at least this many bytes
#: is flushed by the service's writeback tick.
GROUP_COMMIT_BYTES = 64 * 1024

DEFAULT_OWNER = "local"


class _Extent:
    """One append-only run of compressed page payloads."""

    __slots__ = ("live", "dead", "digests", "shard")

    def __init__(self, shard=0):
        self.live = 0
        self.dead = 0
        self.digests = set()
        self.shard = shard


class _Shard:
    """One shard's physical state: its append queue and extent head.

    The queue is a list (append order) shadowed by a set: reclaiming or
    rolling back a queued page just drops it from the set, and the next
    flush skips the stale list entry — cancellation is O(1) and a
    cancelled append never touches an extent.
    """

    __slots__ = ("queue", "queued", "queued_bytes", "current_extent",
                 "flushes", "flush_pages", "flush_bytes", "flush_us_total",
                 "max_batch_pages", "backlog_highwater_bytes")

    def __init__(self):
        self.queue = []
        self.queued = set()
        self.queued_bytes = 0
        self.current_extent = None
        self.flushes = 0
        self.flush_pages = 0
        self.flush_bytes = 0
        self.flush_us_total = 0
        self.max_batch_pages = 0
        self.backlog_highwater_bytes = 0


class ShardedPageCAS:
    """A sharded content-addressed page store shareable across storages.

    Holds the page payloads, per-digest sizes and accounting modes,
    per-owner and global refcounts, the sharded append-only extents, and
    the *physical* byte totals (each committed page charged exactly once
    no matter how many owners reference it).  A private
    :class:`CheckpointStorage` builds its own instance; a fleet builds one
    and hands it to every member storage.

    The logical maps are global; only the extent layout and the append
    queues are per-shard.  ``async_writeback=True`` makes ``store``
    callers leave pages queued for a later service-driven group commit
    (the fleet mode); the default flushes at every manifest commit.
    """

    def __init__(self, shards=DEFAULT_SHARDS, async_writeback=False):
        if shards < 1:
            raise ValueError("shard count must be >= 1, got %r" % (shards,))
        self.pages = {}  # digest -> page payload bytes
        self.sizes = {}  # digest -> (raw, compressed) page bytes
        self.mode = {}  # digest -> accounted mode at first store
        self.refs = {}  # digest -> global (image, key) reference count
        self.owner_refs = {}  # owner -> {digest -> (image, key) refs}
        self.extent_of = {}  # digest -> extent id (absent while queued)
        self.extents = {}  # extent id -> _Extent (ids unique CAS-wide)
        self._extent_seq = 0
        self.shard_count = shards
        self.shards = [_Shard() for _ in range(shards)]
        self.async_writeback = async_writeback
        # Physical totals: each unique committed page charged once.
        self.total_uncompressed_bytes = 0
        self.total_compressed_bytes = 0
        # Cross-owner dedup: pages an owner charged for (first time *it*
        # saw them) that were already committed by another owner.
        self.cross_pages_deduped = 0
        self.cross_dedup_bytes_saved = 0
        self.orphans_reclaimed = 0
        self.compaction_runs = 0
        self.compaction_bytes_reclaimed = 0

    def shard_of(self, digest):
        """The consistent-hash home shard of a digest."""
        return zlib.crc32(digest) % self.shard_count

    # ------------------------------------------------------------------ #
    # Owner bookkeeping

    def owner_refs_for(self, owner):
        refs = self.owner_refs.get(owner)
        if refs is None:
            refs = self.owner_refs[owner] = {}
        return refs

    def owners(self):
        return sorted(self.owner_refs)

    # ------------------------------------------------------------------ #
    # Write path

    def commit_page(self, digest, payload, raw_len, comp_len, mode):
        """Logically commit one page (no references yet) and *enqueue*
        its physical append on the digest's home shard.  The payload is
        immediately readable and dedupable; the extent write happens at
        the next group commit of that shard (:meth:`flush_shard`)."""
        self.pages[digest] = payload
        self.sizes[digest] = (raw_len, comp_len)
        self.mode[digest] = mode
        self.refs[digest] = 0  # referenced at manifest commit
        shard = self.shards[self.shard_of(digest)]
        shard.queue.append(digest)
        shard.queued.add(digest)
        shard.queued_bytes += comp_len
        if shard.queued_bytes > shard.backlog_highwater_bytes:
            shard.backlog_highwater_bytes = shard.queued_bytes
        self.total_uncompressed_bytes += raw_len
        self.total_compressed_bytes += comp_len

    def _unqueue(self, digest, comp_len):
        """Cancel a pending queued append (the page is going away before
        its group commit, so the write simply never happens)."""
        shard = self.shards[self.shard_of(digest)]
        if digest in shard.queued:
            shard.queued.discard(digest)
            shard.queued_bytes -= comp_len
            return True
        return False

    def rollback_page(self, digest):
        """Undo an uncommitted page append (transient-fault rollback):
        the write never happened, so no dead bytes are left behind."""
        raw_len, comp_len = self.sizes.pop(digest)
        self.mode.pop(digest, None)
        self.refs.pop(digest, None)
        self.pages.pop(digest, None)
        eid = self.extent_of.pop(digest, None)
        if eid is not None:
            extent = self.extents[eid]
            extent.live -= comp_len
            extent.digests.discard(digest)
        else:
            self._unqueue(digest, comp_len)
        self.total_uncompressed_bytes -= raw_len
        self.total_compressed_bytes -= comp_len

    def add_ref(self, owner, digest):
        """Add one (image, key) reference for ``owner``; returns True when
        this is the owner's *first* reference to the digest."""
        own = self.owner_refs_for(owner)
        previous = own.get(digest, 0)
        own[digest] = previous + 1
        self.refs[digest] = self.refs.get(digest, 0) + 1
        return previous == 0

    def unref(self, owner, digest):
        """Drop one of ``owner``'s references.  Returns
        ``(owner_dropped, reclaimed)``: whether the owner's last reference
        went away, and whether the page was physically reclaimed (every
        owner at zero)."""
        own = self.owner_refs.get(owner)
        count = own.get(digest) if own is not None else None
        if count is None:
            return False, False
        if count > 1:
            own[digest] = count - 1
            self.refs[digest] -= 1
            return False, False
        del own[digest]
        total = self.refs.get(digest, 0) - 1
        if total > 0:
            self.refs[digest] = total
            return True, False
        self.reclaim_page(digest)
        return True, True

    def reclaim_page(self, digest):
        """Free a committed page regardless of references (fsck path).
        Its extent bytes turn dead."""
        raw_len, comp_len = self.sizes.pop(digest)
        self.mode.pop(digest, None)
        self.refs.pop(digest, None)
        self.pages.pop(digest, None)
        for own in self.owner_refs.values():
            own.pop(digest, None)
        eid = self.extent_of.pop(digest, None)
        if eid is not None:
            extent = self.extents.get(eid)
            if extent is not None:
                extent.live -= comp_len
                extent.dead += comp_len
                extent.digests.discard(digest)
        else:
            # Still queued: cancel the append — it never reaches an
            # extent, so no dead bytes either.
            self._unqueue(digest, comp_len)
        self.total_uncompressed_bytes -= raw_len
        self.total_compressed_bytes -= comp_len

    def accounted_len(self, digest, fallback_mode):
        raw_len, comp_len = self.sizes[digest]
        mode = self.mode.get(digest, fallback_mode)
        return comp_len if mode else raw_len

    # ------------------------------------------------------------------ #
    # Recovery support

    def drop_uncommitted(self):
        """Discard payloads that are present but never committed (torn
        mid-append); returns how many were dropped."""
        dropped = 0
        for digest in [d for d in self.pages if d not in self.sizes]:
            del self.pages[digest]
            self.refs.pop(digest, None)
            for own in self.owner_refs.values():
                own.pop(digest, None)
            dropped += 1
        return dropped

    def rebuild_owner_refs(self, owner, manifests):
        """Recompute ``owner``'s refcounts from its surviving manifests
        and reclaim pages no owner references any more.

        ``manifests`` is an iterable of digest tuples (one per surviving
        image).  Other owners' counts are never touched — the contract
        that makes one session's crash recovery safe for the rest of the
        fleet.  Returns the number of orphaned pages reclaimed.
        """
        own = {}
        for digests in manifests:
            for digest in digests:
                own[digest] = own.get(digest, 0) + 1
        self.owner_refs[owner] = own
        # Global counts are the sum over owners (mutate the dict in place:
        # storages alias it).
        totals = {}
        for refs in self.owner_refs.values():
            for digest, count in refs.items():
                totals[digest] = totals.get(digest, 0) + count
        self.refs.clear()
        self.refs.update(totals)
        reclaimed = self.drop_uncommitted()
        for digest in [d for d in self.pages
                       if self.refs.get(d, 0) <= 0]:
            self.reclaim_page(digest)
            reclaimed += 1
        if reclaimed:
            self.orphans_reclaimed += reclaimed
        return reclaimed

    def owner_logical_totals(self, owner):
        """(raw, compressed) bytes of the unique pages ``owner``
        references — the owner-logical page accounting."""
        raw = comp = 0
        for digest in self.owner_refs.get(owner, ()):
            raw_len, comp_len = self.sizes[digest]
            raw += raw_len
            comp += comp_len
        return raw, comp

    # ------------------------------------------------------------------ #
    # Group-commit writeback

    def flush_shard(self, sid, faults=None, costs=None, clock=None):
        """Drain one shard's append queue as a single group commit.

        Appends every still-pending queued page to the shard's extents in
        enqueue order and returns a batch report (None when the queue was
        empty).  ``faults`` arms the two flush failpoints — the *sync*
        store path passes its own plan so a solo crash sweep exercises
        them; the fleet's service-driven flushes leave them unarmed.
        ``costs`` prices the batch as one sequential write (reported as
        ``flush_us``); ``clock`` (rarely used — flushes model background
        I/O that overlaps execution) would charge it.

        Crash semantics: a crash at ``storage.shard.flush`` leaves the
        queue intact — the batch never reached disk; a crash at
        ``storage.shard.group_commit`` leaves the batch appended but the
        commit record torn, so fsck decides by refcount (an interrupted
        store has not referenced its pages yet and they are reclaimed).
        """
        shard = self.shards[sid]
        if not shard.queued:
            shard.queue = []  # drop stale cancelled entries
            return None
        if faults is not None:
            faults.check(FP_SHARD_FLUSH)
        batch = [digest for digest in shard.queue
                 if digest in shard.queued and digest in self.sizes
                 and digest not in self.extent_of]
        shard.queue = []
        shard.queued.clear()
        shard.queued_bytes = 0
        bytes_flushed = 0
        for digest in batch:
            comp_len = self.sizes[digest][1]
            self._extent_append(digest, comp_len, sid)
            bytes_flushed += comp_len
        if faults is not None:
            faults.check(FP_SHARD_GROUP_COMMIT)
        flush_us = 0
        if costs is not None and bytes_flushed:
            flush_us = int(costs.disk_write_us(bytes_flushed,
                                               sequential=True))
            if clock is not None:
                clock.advance_us(flush_us)
        shard.flushes += 1
        shard.flush_pages += len(batch)
        shard.flush_bytes += bytes_flushed
        shard.flush_us_total += flush_us
        if len(batch) > shard.max_batch_pages:
            shard.max_batch_pages = len(batch)
        return {"shard": sid, "pages": len(batch),
                "bytes": bytes_flushed, "flush_us": flush_us}

    def flush_all(self, faults=None, costs=None, clock=None):
        """Group-commit every shard with a non-empty queue; returns the
        list of batch reports."""
        reports = []
        for sid in range(self.shard_count):
            report = self.flush_shard(sid, faults=faults, costs=costs,
                                      clock=clock)
            if report is not None:
                reports.append(report)
        return reports

    def drain(self, costs=None):
        """The writeback barrier: flush every queued append and return
        aggregate totals.  Delete/GC/compact/recover and fleet shutdown
        call this — it is the only place anything waits on storage."""
        reports = self.flush_all(costs=costs)
        return {
            "batches": len(reports),
            "pages": sum(r["pages"] for r in reports),
            "bytes": sum(r["bytes"] for r in reports),
        }

    def backlog_pages(self):
        """Queued page appends not yet group-committed, CAS-wide."""
        return sum(len(shard.queued) for shard in self.shards)

    def backlog_bytes(self):
        """Compressed bytes sitting in append queues, CAS-wide."""
        return sum(shard.queued_bytes for shard in self.shards)

    def unflushed_digests(self):
        """Digests committed logically but not yet in any extent."""
        pending = set()
        for shard in self.shards:
            pending.update(shard.queued)
        return pending

    def drop_queued_orphans(self):
        """Fsck: drop queued-but-unflushed pages nobody references — a
        crash lost those in-flight writes.  Queued pages a (surviving)
        owner's manifest references are kept queued: in async mode the
        service outlives a member crash and its queues with it.  Returns
        how many pages were dropped."""
        dropped = 0
        for shard in self.shards:
            for digest in sorted(shard.queued):
                if self.refs.get(digest, 0) <= 0:
                    self.reclaim_page(digest)
                    dropped += 1
        return dropped

    def reshard(self, shards):
        """Rebuild the physical layout under a new shard count.

        Drains the queues, then re-appends every committed page to its
        new home shard in digest order.  The logical maps — and with
        them every manifest, refcount, and accounting figure — are
        untouched: v3 manifests name digests, not extents, so a store
        reopened with a different K serves identical reads.  (The
        rewrite squeezes out dead bytes as a side effect, like a full
        compaction.)
        """
        if shards < 1:
            raise ValueError("shard count must be >= 1, got %r" % (shards,))
        self.flush_all()
        self.shard_count = shards
        self.shards = [_Shard() for _ in range(shards)]
        self.extents = {}
        self.extent_of = {}
        self._extent_seq = 0
        for digest in sorted(self.sizes):
            self._extent_append(digest, self.sizes[digest][1])

    def shard_stats(self):
        """Per-shard physical and writeback figures (JSON-ready)."""
        per_extents = {}
        per_live = {}
        per_dead = {}
        for extent in self.extents.values():
            per_extents[extent.shard] = per_extents.get(extent.shard, 0) + 1
            per_live[extent.shard] = per_live.get(extent.shard, 0) \
                + extent.live
            per_dead[extent.shard] = per_dead.get(extent.shard, 0) \
                + extent.dead
        rows = []
        for sid, shard in enumerate(self.shards):
            rows.append({
                "shard": sid,
                "extents": per_extents.get(sid, 0),
                "live_bytes": per_live.get(sid, 0),
                "dead_bytes": per_dead.get(sid, 0),
                "queued_pages": len(shard.queued),
                "queued_bytes": shard.queued_bytes,
                "flushes": shard.flushes,
                "flush_pages": shard.flush_pages,
                "flush_bytes": shard.flush_bytes,
                "flush_us_total": shard.flush_us_total,
                "max_batch_pages": shard.max_batch_pages,
                "backlog_highwater_bytes": shard.backlog_highwater_bytes,
            })
        return rows

    # ------------------------------------------------------------------ #
    # Extents and compaction

    def _extent_append(self, digest, comp_len, sid=None):
        if sid is None:
            sid = self.shard_of(digest)
        shard = self.shards[sid]
        eid = shard.current_extent
        extent = self.extents.get(eid) if eid is not None else None
        if extent is None or extent.live + extent.dead >= EXTENT_TARGET_BYTES:
            self._extent_seq += 1
            eid = self._extent_seq
            extent = _Extent(shard=sid)
            self.extents[eid] = extent
            shard.current_extent = eid
        extent.live += comp_len
        extent.digests.add(digest)
        self.extent_of[digest] = eid

    def fragmentation(self):
        """Live/dead byte split across page extents (plus the writeback
        backlog still waiting on a group commit)."""
        live = sum(extent.live for extent in self.extents.values())
        dead = sum(extent.dead for extent in self.extents.values())
        return {"extents": len(self.extents),
                "live_bytes": live, "dead_bytes": dead,
                "queued_bytes": self.backlog_bytes()}

    def compact(self, dead_fraction=DEFAULT_DEAD_FRACTION, clock=None,
                costs=None):
        """Reclaim orphaned pages and rewrite fragmented extents.

        Begins with a :meth:`drain` barrier — compaction must never
        rewrite an extent while appends for its shard are still in
        flight, so every queued page is group-committed (or has been
        cancelled by an earlier reclaim) before any extent moves.  Then
        any page with zero references fleet-wide (crash leftovers, or
        entries whose last manifest was pruned out from under them) is
        reclaimed, and every extent whose dead fraction is at least
        ``dead_fraction`` has its live pages rewritten into its shard's
        current append head and its dead bytes reclaimed.  Pass ``clock``
        and ``costs`` to charge the sequential read + write of the moved
        live bytes — a private storage charges its session clock, a fleet
        charges the service clock.  Returns a report dict.
        """
        report = {
            "orphans_reclaimed": 0,
            "extents_rewritten": 0,
            "pages_moved": 0,
            "bytes_reclaimed": 0,
        }
        drained = self.drain(costs=costs)
        report["drained_pages"] = drained["pages"]
        report["drained_bytes"] = drained["bytes"]
        report["orphans_reclaimed"] += self.drop_uncommitted()
        for digest in [d for d, refs in self.refs.items() if refs <= 0]:
            self.reclaim_page(digest)
            report["orphans_reclaimed"] += 1
        if report["orphans_reclaimed"]:
            self.orphans_reclaimed += report["orphans_reclaimed"]
        for eid in sorted(self.extents):
            extent = self.extents.get(eid)
            if extent is None:
                continue
            shard = self.shards[extent.shard] \
                if extent.shard < self.shard_count else None
            total = extent.live + extent.dead
            if total == 0:
                if shard is None or shard.current_extent != eid:
                    del self.extents[eid]
                continue
            if extent.dead == 0 or extent.dead / total < dead_fraction:
                continue
            if shard is not None and shard.current_extent == eid:
                # Never rewrite an extent into itself: retire the append
                # head and let the move open a fresh one.
                shard.current_extent = None
            if clock is not None and costs is not None and extent.live:
                clock.advance_us(
                    costs.disk_read_us(extent.live, sequential=True))
                clock.advance_us(
                    costs.disk_write_us(extent.live, sequential=True))
            for digest in sorted(extent.digests):
                self._extent_append(digest, self.sizes[digest][1])
                report["pages_moved"] += 1
            del self.extents[eid]
            report["extents_rewritten"] += 1
            report["bytes_reclaimed"] += extent.dead
        self.compaction_runs += 1
        self.compaction_bytes_reclaimed += report["bytes_reclaimed"]
        return report

    # ------------------------------------------------------------------ #

    def entries(self):
        """``{digest: {"refs", "uncompressed", "compressed"}}`` for every
        committed page (global refcounts)."""
        return {
            digest: {
                "refs": self.refs.get(digest, 0),
                "uncompressed": raw_len,
                "compressed": comp_len,
            }
            for digest, (raw_len, comp_len) in self.sizes.items()
        }

    def refcount_consistent(self):
        """The refcount fsck: every live page's global count must be
        exactly the sum of the per-owner counts (no owner bucket can
        drift from the global ledger, no ref can exist ownerless)."""
        totals = {}
        for refs in self.owner_refs.values():
            for digest, count in refs.items():
                totals[digest] = totals.get(digest, 0) + count
        live = {digest: count
                for digest, count in self.refs.items() if count}
        return totals == live

    def stats(self):
        """Fleet-level CAS facts (physical bytes + cross-owner dedup +
        per-shard writeback figures)."""
        return {
            "cas_pages": len(self.sizes),
            "refcount_consistent": self.refcount_consistent(),
            "physical_uncompressed_bytes": self.total_uncompressed_bytes,
            "physical_compressed_bytes": self.total_compressed_bytes,
            "cross_pages_deduped": self.cross_pages_deduped,
            "cross_dedup_bytes_saved": self.cross_dedup_bytes_saved,
            "orphans_reclaimed": self.orphans_reclaimed,
            "owners": self.owners(),
            "shard_count": self.shard_count,
            "writeback": {
                "async": self.async_writeback,
                "backlog_pages": self.backlog_pages(),
                "backlog_bytes": self.backlog_bytes(),
                "backlog_highwater_bytes": max(
                    (s.backlog_highwater_bytes for s in self.shards),
                    default=0),
                "flush_batches": sum(s.flushes for s in self.shards),
                "flush_pages": sum(s.flush_pages for s in self.shards),
                "flush_bytes": sum(s.flush_bytes for s in self.shards),
            },
            "shards": self.shard_stats(),
        }


#: Backwards-compatible name: the unsharded store is the K=1 special
#: case of the sharded one (identical extent ids and append order).
PageCAS = ShardedPageCAS


class StoreReceipt:
    """What one ``store`` call actually wrote (as accounted)."""

    __slots__ = ("image_id", "accounted_bytes", "pages_stored",
                 "pages_deduped", "dedup_bytes_saved")

    def __init__(self, image_id, accounted_bytes, pages_stored=0,
                 pages_deduped=0, dedup_bytes_saved=0):
        self.image_id = image_id
        self.accounted_bytes = accounted_bytes
        self.pages_stored = pages_stored
        self.pages_deduped = pages_deduped
        self.dedup_bytes_saved = dedup_bytes_saved


class CheckpointStorage:
    """Stores serialized checkpoint images on a simulated disk.

    ``cas`` (optional) injects a shared :class:`PageCAS`; ``owner`` names
    this storage's reference-count bucket inside it.  The default is a
    private CAS with a single owner — the classic one-session layout.
    """

    def __init__(self, clock=None, costs=DEFAULT_COSTS, compress=False,
                 faults=None, telemetry=None, page_store=True,
                 cas=None, owner=DEFAULT_OWNER, shards=DEFAULT_SHARDS):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        #: Whether the *accounted* storage format is compressed (the paper
        #: reports both "Process" and "Process (Compressed)" growth rates).
        self.compress = compress
        #: Content-addressed page store (v3 manifests) vs whole blobs (v2).
        self.page_store = page_store
        self.faults = resolve_faults(faults)
        #: ``shards`` sizes a *private* CAS; an injected shared ``cas``
        #: arrives already sharded by its builder (the fleet).
        self.cas = cas if cas is not None else ShardedPageCAS(shards=shards)
        self.owner = owner
        self.cas.owner_refs_for(owner)  # register the owner eagerly
        self._blobs = {}  # image id -> framed blob (zlib payload + trailer)
        self._sizes = {}  # image id -> logical (uncompressed, compressed)
        self._meta_sizes = {}  # image id -> metadata record bytes
        self._cached = set()
        # Manifest bookkeeping (one entry per stored image).
        self._manifests = {}  # image id -> tuple of page digests (key order)
        self._manifest_sizes = {}  # image id -> (raw, compressed) blob bytes
        self._stored_mode = {}  # image id -> accounted mode at store time
        # Base-manifest pins: a revived branch's claim on the page digests
        # of its *source* checkpoint chain, held in the shared CAS under
        # this owner so the parent (or a sibling) pruning the source never
        # reclaims pages the branch still demand-pages.
        self._base_manifests = {}  # source image id -> tuple of digests
        # THINNED tombstones: image id -> fingerprint record of a
        # checkpoint whose bytes were dropped but whose instant is still
        # re-derivable by replaying forward from a surviving anchor.
        self._tombstones = {}
        # Owner-logical totals: manifest/blob frames, plus each unique CAS
        # page this owner references, charged once while referenced.
        self._frame_raw_total = 0
        self._frame_comp_total = 0
        self._page_raw_total = 0
        self._page_comp_total = 0
        self.write_count = 0
        self.read_count = 0
        self.pages_deduped = 0
        self.dedup_bytes_saved = 0
        metrics = resolve_telemetry(telemetry)
        self._m_pages_deduped = metrics.counter("storage.pages_deduped")
        self._m_dedup_saved = metrics.counter("storage.dedup_bytes_saved")
        self._m_orphans = metrics.counter("storage.cas_orphans_reclaimed")
        self._m_flush_batches = metrics.counter("storage.writeback_flushes")
        self._m_flush_pages = metrics.counter(
            "storage.writeback_flush_pages")
        self._m_flush_bytes = metrics.counter(
            "storage.writeback_flush_bytes")
        self._orphans_attributed = 0

    def bind_faults(self, faults):
        self.faults = resolve_faults(faults)

    # -- accounting views ---------------------------------------------- #

    @property
    def total_uncompressed_bytes(self):
        return self._frame_raw_total + self._page_raw_total

    @property
    def total_compressed_bytes(self):
        return self._frame_comp_total + self._page_comp_total

    @property
    def cas_orphans_reclaimed(self):
        return self.cas.orphans_reclaimed

    @property
    def compaction_runs(self):
        return self.cas.compaction_runs

    @property
    def compaction_bytes_reclaimed(self):
        return self.cas.compaction_bytes_reclaimed

    # -- shared-CAS internals, aliased for tests and tooling ------------ #

    @property
    def _cas(self):
        return self.cas.pages

    @property
    def _cas_sizes(self):
        return self.cas.sizes

    @property
    def _cas_refs(self):
        return self.cas.refs

    @property
    def _cas_mode(self):
        return self.cas.mode

    @property
    def _cas_extent(self):
        return self.cas.extent_of

    @property
    def _extents(self):
        return self.cas.extents

    @property
    def _own_refs(self):
        return self.cas.owner_refs_for(self.owner)

    # ------------------------------------------------------------------ #
    # Write path

    def store(self, image, charge_time=True):
        """Serialize and write an image; returns a :class:`StoreReceipt`
        whose ``accounted_bytes`` is the bytes actually written as
        accounted (compressed when compression is enabled, with pages
        already referenced by this owner deduplicated away).

        Transactional for transient faults: an :class:`InjectedFault`
        rolls back every page this call committed, so a failed store
        leaves the totals consistent.  An injected *crash* instead leaves
        the on-disk state a real mid-write power cut would — a torn
        frame, a torn page, or committed-but-unreferenced pages —
        before propagating.
        """
        if image.checkpoint_id in self._blobs:
            raise CheckpointError(
                "checkpoint %d already stored" % image.checkpoint_id
            )
        if not self.page_store:
            return self._store_blob(image, charge_time)
        return self._store_manifest(image, charge_time)

    def _frame(self, raw):
        blob = zlib.compress(raw, level=1)
        return blob, blob + _TRAILER.pack(
            TRAILER_MAGIC, len(raw), len(blob), zlib.crc32(blob))

    def _crash_torn_frame(self, image_id, frame):
        """The host died mid-write: half the frame made it to disk,
        trailer missing.  No cache entry — the machine is gone."""
        torn = frame[:max(1, len(frame) // 2)]
        self._blobs[image_id] = torn
        self._sizes[image_id] = (0, len(torn))
        self._meta_sizes[image_id] = 0
        self._frame_comp_total += len(torn)

    def _store_blob(self, image, charge_time):
        """Legacy whole-blob write path (serial format v2)."""
        raw = image.serialize()
        blob, frame = self._frame(raw)
        mode = self.compress
        written = len(blob) if mode else len(raw)
        image_id = image.checkpoint_id
        try:
            # A transient fault (InjectedFault/IOError) raises here,
            # before any mutation: the store simply did not happen.
            self.faults.check(FP_STORE_PRE_COMMIT)
        except InjectedCrash:
            self._crash_torn_frame(image_id, frame)
            raise
        if charge_time:
            if mode:
                self.clock.advance_us(self.costs.compress_us(len(raw)))
            self.clock.advance_us(
                self.costs.disk_write_us(written, sequential=True)
            )
        self._blobs[image_id] = frame
        self._sizes[image_id] = (len(raw), len(blob))
        self._meta_sizes[image_id] = image.metadata_bytes
        self._manifests[image_id] = ()
        self._manifest_sizes[image_id] = (len(raw), len(blob))
        self._stored_mode[image_id] = mode
        self._frame_raw_total += len(raw)
        self._frame_comp_total += len(blob)
        self.write_count += 1
        # A freshly written image sits in the page cache.
        self._cached.add(image_id)
        return StoreReceipt(image_id=image_id, accounted_bytes=written,
                            pages_stored=len(image.pages))

    def _store_manifest(self, image, charge_time):
        """CAS write path: append new pages, then commit the manifest.

        Dedup for *charging* (clock time, receipt, owner-logical totals)
        is decided against this owner's own references, so the simulated
        timings of a session never depend on what other fleet members have
        stored.  Physical appends are decided against the whole CAS —
        a page another owner committed is a cross-dedup hit: charged to
        this owner, written by nobody.
        """
        cas = self.cas
        image_id = image.checkpoint_id
        mode = self.compress
        manifest = image.manifest()
        contents = {}
        for key in manifest:
            digest = manifest[key]
            content = image.pages.get(key)
            if content is None:
                content = cas.pages.get(digest)
                if content is None or digest not in cas.refs:
                    raise CheckpointError(
                        "page %r of checkpoint %d has no payload and is "
                        "not in the page store" % (key, image_id))
            contents[digest] = bytes(content)
        # Serialize the manifest from the digests just computed (no
        # second hashing pass inside serialize).
        image.page_digests = dict(manifest)
        raw = image.serialize(format=FORMAT_VERSION_MANIFEST)
        blob, frame = self._frame(raw)
        # Dedup analysis, before any mutation.  ``ordered`` has one digest
        # per page key; a digest this owner already references (or one
        # repeated within this image) is a charging dedup hit.
        ordered = tuple(manifest[key] for key in sorted(manifest))
        own_refs = self._own_refs
        sizes = {}
        for digest in set(ordered):
            if digest in cas.sizes:
                sizes[digest] = cas.sizes[digest]
            else:
                content = contents[digest]
                sizes[digest] = (
                    len(content), len(zlib.compress(content, 1)))

        def accounted(digest):
            raw_len, comp_len = sizes[digest]
            return comp_len if mode else raw_len

        charge_new = []
        dup_count = 0
        dup_saved = 0
        seen = set()
        for digest in ordered:
            if digest in own_refs or digest in seen:
                dup_count += 1
                dup_saved += accounted(digest)
            else:
                seen.add(digest)
                charge_new.append(digest)
        # Physical appends: only digests nobody has committed yet.
        phys_new = [digest for digest in charge_new
                    if digest not in cas.refs]
        new_bytes = sum(accounted(digest) for digest in charge_new)
        new_raw_bytes = sum(sizes[digest][0] for digest in charge_new)
        written = (len(blob) if mode else len(raw)) + new_bytes
        raw_logical = len(raw) + sum(sizes[d][0] for d in ordered)
        comp_logical = len(blob) + sum(sizes[d][1] for d in ordered)
        try:
            self.faults.check(FP_STORE_PRE_COMMIT)
        except InjectedCrash:
            self._crash_torn_frame(image_id, frame)
            raise
        committed = []
        index = -1
        try:
            for index, digest in enumerate(phys_new):
                # Crash here tears the page being appended; every earlier
                # page of this store stays committed with no manifest
                # referencing it yet.
                self.faults.check(FP_CAS_PAGE_APPEND)
                raw_len, comp_len = sizes[digest]
                cas.commit_page(digest, contents[digest], raw_len,
                                comp_len, mode)
                committed.append(digest)
            if committed and not cas.async_writeback:
                # Sync durability point: force-flush the touched shards
                # (one group commit each) before the manifest commits, so
                # sharding moved no durability boundary.  Async callers
                # skip this — the service group-commits on its own clock
                # and ``drain`` is the only barrier.
                for sid in sorted({cas.shard_of(d) for d in committed}):
                    self._account_flush(cas.flush_shard(
                        sid, faults=self.faults, costs=self.costs))
            # Crash here strands every page of this store as an orphan:
            # committed payloads, zero references, no manifest.
            self.faults.check(FP_CAS_MANIFEST_COMMIT)
        except InjectedCrash as crash:
            if crash.site == FP_CAS_PAGE_APPEND and 0 <= index:
                digest = phys_new[index]
                content = contents[digest]
                cas.pages[digest] = content[:max(1, len(content) // 2)]
            raise
        except InjectedFault:
            # Transient fault: roll back every page this call committed.
            for digest in committed:
                cas.rollback_page(digest)
            raise
        if charge_time:
            if mode:
                self.clock.advance_us(
                    self.costs.compress_us(len(raw) + new_raw_bytes))
            self.clock.advance_us(
                self.costs.disk_write_us(written, sequential=True))
        self._blobs[image_id] = frame
        self._sizes[image_id] = (raw_logical, comp_logical)
        self._meta_sizes[image_id] = image.metadata_bytes
        self._manifests[image_id] = ordered
        self._manifest_sizes[image_id] = (len(raw), len(blob))
        self._stored_mode[image_id] = mode
        for digest in ordered:
            if cas.add_ref(self.owner, digest):
                raw_len, comp_len = sizes[digest]
                self._page_raw_total += raw_len
                self._page_comp_total += comp_len
        self._frame_raw_total += len(raw)
        self._frame_comp_total += len(blob)
        self.write_count += 1
        self._cached.add(image_id)
        if dup_count:
            self.pages_deduped += dup_count
            self.dedup_bytes_saved += dup_saved
            self._m_pages_deduped.inc(dup_count)
            self._m_dedup_saved.inc(dup_saved)
        cross = len(charge_new) - len(phys_new)
        if cross:
            cross_saved = sum(accounted(digest) for digest in charge_new
                              if digest not in phys_new)
            cas.cross_pages_deduped += cross
            cas.cross_dedup_bytes_saved += cross_saved
        return StoreReceipt(
            image_id=image_id,
            accounted_bytes=written,
            pages_stored=len(charge_new),
            pages_deduped=dup_count,
            dedup_bytes_saved=dup_saved,
        )

    def _unref(self, digest):
        """Drop one of this owner's manifest references; returns the
        owner-logical bytes freed (accounted at store time) when the
        owner's last reference went away."""
        cas = self.cas
        sizes = cas.sizes.get(digest)
        if sizes is None:
            return 0
        raw_len, comp_len = sizes
        mode = cas.mode.get(digest, self.compress)
        owner_dropped, _reclaimed = cas.unref(self.owner, digest)
        if not owner_dropped:
            return 0
        self._page_raw_total -= raw_len
        self._page_comp_total -= comp_len
        return comp_len if mode else raw_len

    # ------------------------------------------------------------------ #
    # Writeback pipeline

    def _account_flush(self, report):
        """Fold one group-commit batch into this storage's counters."""
        if report is None:
            return
        self._m_flush_batches.inc()
        self._m_flush_pages.inc(report["pages"])
        self._m_flush_bytes.inc(report["bytes"])

    def drain_writeback(self):
        """Flush every queued page append — the writeback barrier.  Used
        before operations that must see a settled physical layout
        (delete/GC/compact/recover) and at fleet shutdown.  Returns the
        aggregate ``{"batches", "pages", "bytes"}`` totals."""
        reports = self.cas.flush_all(costs=self.costs)
        for report in reports:
            self._account_flush(report)
        return {
            "batches": len(reports),
            "pages": sum(r["pages"] for r in reports),
            "bytes": sum(r["bytes"] for r in reports),
        }

    @property
    def writeback_backlog_bytes(self):
        """Bytes enqueued in the CAS but not yet group-committed."""
        return self.cas.backlog_bytes()

    @property
    def writeback_async(self):
        return self.cas.async_writeback

    def unflushed_digests(self):
        """Digests committed logically but still queued (no extent yet);
        the chain verifier's durability-invariant probe."""
        return self.cas.unflushed_digests()

    # ------------------------------------------------------------------ #
    # Frame integrity

    def blob_ok(self, image_id):
        """Validate one stored frame's trailer; ``(ok, reason)``."""
        frame = self._blobs.get(image_id)
        if frame is None:
            return False, "missing"
        if len(frame) <= _TRAILER.size:
            return False, "torn: frame shorter than trailer"
        magic, _raw_len, blob_len, crc = _TRAILER.unpack(
            frame[-_TRAILER.size:])
        if magic != TRAILER_MAGIC:
            return False, "torn: trailer magic missing"
        blob = frame[:-_TRAILER.size]
        if blob_len != len(blob):
            return False, "torn: payload length mismatch"
        if crc != zlib.crc32(blob):
            return False, "corrupt: payload checksum mismatch"
        return True, None

    def blob_fingerprint(self, image_id):
        """SHA-1 hexdigest of one stored frame's bytes — the checkpoint's
        bit-identity, as replay anchors assert it.

        The frame covers the serialized metadata and, for v3 images, the
        page-digest manifest; digest equality implies page-payload
        equality in the content-addressed store, so fingerprint equality
        is whole-checkpoint equality under both layouts.  Pure hashing:
        never charges the virtual clock.
        """
        frame = self._blobs.get(image_id)
        if frame is None:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        return hashlib.sha1(frame).hexdigest()

    # ------------------------------------------------------------------ #
    # Read path

    def load(self, image_id, cached=None, metadata_only=False, clock=None):
        """Read and decode an image.

        ``cached=None`` uses the storage's own cache state; True/False
        force the hot/cold path (benchmarks force both).

        ``metadata_only=True`` charges only for the image's metadata record
        (process/region/page-location tables) — the demand-paged revive
        path, which reads page payloads lazily later.  For a v3 manifest
        the returned image then carries :attr:`page_digests` but no
        payloads; the demand pager resolves digests via :meth:`cas_page`.
        A full load hydrates ``pages`` from the CAS, so callers see the
        same object either format produced.

        ``clock`` charges the read to a *foreign* clock — a revived
        branch demand-pages out of its parent's storage but pays on its
        own timeline, and must not mutate the parent's cache state (the
        branch host's page cache is not the parent's).

        A torn or corrupt frame — or a manifest whose digest cannot be
        resolved — raises :class:`CheckpointError` (after charging for
        the attempted read; the seek still happened).
        """
        charge = clock if clock is not None else self.clock
        foreign = charge is not self.clock
        frame = self._blobs.get(image_id)
        if frame is None:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        ok, reason = self.blob_ok(image_id)
        if not ok:
            charge.advance_us(
                self.costs.disk_read_us(len(frame), sequential=False))
            self.read_count += 1
            raise CheckpointError(
                "checkpoint %d unreadable (%s)" % (image_id, reason))
        blob = frame[:-_TRAILER.size]
        uncompressed, compressed = self._sizes[image_id]
        read_bytes = compressed if self.compress else uncompressed
        if metadata_only:
            read_bytes = min(read_bytes, self._meta_sizes[image_id])
        if cached is None:
            cached = image_id in self._cached
        if cached:
            charge.advance_us(read_bytes * self.costs.memcpy_us_per_byte)
        else:
            charge.advance_us(
                self.costs.disk_read_us(read_bytes, sequential=False)
            )
            if not metadata_only and not foreign:
                self._cached.add(image_id)
        self.read_count += 1
        image = CheckpointImage.deserialize(zlib.decompress(blob))
        if not metadata_only and image.page_digests and not image.pages:
            for key, digest in sorted(image.page_digests.items()):
                content = self.cas.pages.get(digest)
                if content is None:
                    raise CheckpointError(
                        "checkpoint %d unreadable (missing page %r in "
                        "page store)" % (image_id, key))
                image.pages[key] = content
        return image

    def cas_page(self, digest):
        """Resolve one page payload by digest (None when absent) — the
        demand pager's per-page read."""
        return self.cas.pages.get(digest)

    def is_cached(self, image_id):
        return image_id in self._cached

    def evict_all(self):
        """Drop the page cache (forces the Figure 7 uncached path)."""
        self._cached.clear()

    def stored_ids(self):
        return sorted(self._blobs)

    def size_of(self, image_id):
        """Logical ``(uncompressed, compressed)`` byte sizes of one image
        — what a full read of it costs, counting every referenced page."""
        if image_id not in self._sizes:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        return self._sizes[image_id]

    def metadata_size_of(self, image_id):
        """Byte size of one image's metadata record alone — what a
        demand-paged fork actually reads up front."""
        if image_id not in self._meta_sizes:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        uncompressed, compressed = self._sizes[image_id]
        logical = compressed if self.compress else uncompressed
        return min(logical, self._meta_sizes[image_id])

    def manifest_digests(self, image_id):
        """The stored page-digest manifest of one image (empty for whole
        blobs, whose pages are inline)."""
        if image_id not in self._blobs:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        return self._manifests.get(image_id, ())

    def cas_entries(self):
        """``{digest: {"refs", "uncompressed", "compressed"}}`` for every
        committed CAS page (the property-test observation surface).  Refs
        are global — fleet-wide — counts."""
        return self.cas.entries()

    def fragmentation(self):
        """Live/dead byte split across page extents."""
        return self.cas.fragmentation()

    def dedup_stats(self):
        """Cumulative dedup and reclamation counters (owner-local dedup,
        plus the shared CAS's cross-owner figures)."""
        return {
            "pages_deduped": self.pages_deduped,
            "dedup_bytes_saved": self.dedup_bytes_saved,
            "cas_orphans_reclaimed": self.cas.orphans_reclaimed,
            "cas_pages": len(self.cas.sizes),
            "compaction_runs": self.cas.compaction_runs,
            "compaction_bytes_reclaimed": self.cas.compaction_bytes_reclaimed,
            "cross_pages_deduped": self.cas.cross_pages_deduped,
            "cross_dedup_bytes_saved": self.cas.cross_dedup_bytes_saved,
        }

    def delete(self, image_id):
        """Remove a stored image (checkpoint pruning); returns the bytes
        freed as accounted *at store time* — the manifest plus any CAS
        page whose last reference from this owner this was.

        Pages still sitting in an append queue are handled without a
        drain: reclaiming a queued page *cancels* the pending append
        (it never reaches an extent), so a delete can never race a
        group commit into a half-dead extent."""
        if image_id not in self._blobs:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        uncompressed, compressed = self._sizes.pop(image_id)
        mode = self._stored_mode.pop(image_id, self.compress)
        manifest_sizes = self._manifest_sizes.pop(image_id, None)
        digests = self._manifests.pop(image_id, ())
        del self._blobs[image_id]
        self._meta_sizes.pop(image_id, None)
        self._cached.discard(image_id)
        if manifest_sizes is None:
            # Torn or externally injected frame: only its raw frame bytes
            # were ever accounted.
            manifest_sizes = (uncompressed, compressed)
        man_raw, man_comp = manifest_sizes
        freed = man_comp if mode else man_raw
        self._frame_raw_total -= man_raw
        self._frame_comp_total -= man_comp
        for digest in digests:
            freed += self._unref(digest)
        return freed

    # ------------------------------------------------------------------ #
    # THINNED tombstones (checkpoint thinning via replay)

    def thin(self, image_id, anchor_id, timestamp_us=None,
             framebuffer_sha1=None):
        """Drop a stored checkpoint's bytes, leaving a THINNED tombstone.

        The tombstone records the checkpoint's bit-identity (its frame
        fingerprint, plus the framebuffer checksum its replay anchor
        logged) and the ``anchor_id`` of the nearest *surviving* earlier
        checkpoint — replay from that anchor re-derives the thinned
        instant and is verified against the tombstone before any revive
        hands the session back.  Returns the owner-logical bytes freed
        (0 when the image is already thinned — thinning is idempotent).

        Failpoints: ``thin.tombstone`` fires before the tombstone
        commits (a crash there leaves the image fully intact);
        ``thin.drop_refs`` fires mid-way through the unref loop (a crash
        there leaves the tombstone committed with partial refs — fsck
        rebuilds this owner's counts from surviving manifests).  A
        *transient* fault rolls the whole thin back, including the
        tombstone.
        """
        if image_id in self._tombstones:
            return 0
        if image_id not in self._blobs:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        ok, reason = self.blob_ok(image_id)
        if not ok:
            raise CheckpointError(
                "cannot thin unreadable checkpoint %d (%s)"
                % (image_id, reason))
        if anchor_id is None:
            raise CheckpointError(
                "checkpoint %d needs a surviving replay anchor to thin"
                % image_id)
        if anchor_id not in self._blobs or not self.blob_ok(anchor_id)[0]:
            raise CheckpointError(
                "thin anchor %d for checkpoint %d is not stored intact"
                % (anchor_id, image_id))
        tombstone = {
            "image_id": image_id,
            "anchor_id": anchor_id,
            "timestamp_us": timestamp_us,
            "checkpoint_fp": self.blob_fingerprint(image_id),
            "framebuffer_sha1": framebuffer_sha1,
        }
        # Crash before the tombstone record lands: nothing changed, the
        # next thinning pass simply picks the image up again.
        self.faults.check(FP_THIN_TOMBSTONE)
        self._tombstones[image_id] = tombstone
        # From here the drop mirrors :meth:`delete`, with a mid-loop
        # failpoint and a transient-fault rollback snapshot.
        cas = self.cas
        uncompressed, compressed = self._sizes.pop(image_id)
        mode = self._stored_mode.pop(image_id, self.compress)
        manifest_sizes = self._manifest_sizes.pop(image_id, None)
        digests = self._manifests.pop(image_id, ())
        frame = self._blobs.pop(image_id)
        meta_size = self._meta_sizes.pop(image_id, None)
        was_cached = image_id in self._cached
        self._cached.discard(image_id)
        if manifest_sizes is None:
            manifest_sizes = (uncompressed, compressed)
        man_raw, man_comp = manifest_sizes
        freed = man_comp if mode else man_raw
        self._frame_raw_total -= man_raw
        self._frame_comp_total -= man_comp
        snapshot = {
            digest: (cas.pages.get(digest), cas.sizes[digest],
                     cas.mode.get(digest, mode))
            for digest in set(digests) if digest in cas.sizes
        }
        dropped = []
        midpoint = len(digests) // 2
        try:
            for index, digest in enumerate(digests):
                if index == midpoint:
                    self.faults.check(FP_THIN_DROP_REFS)
                freed += self._unref(digest)
                dropped.append(digest)
        except InjectedFault:
            # Transient fault: the thin never happened.  Resurrect any
            # page the partial unrefs reclaimed, retake the refs, restore
            # the image bookkeeping, and withdraw the tombstone.
            for digest in reversed(dropped):
                payload, (raw_len, comp_len), pmode = snapshot[digest]
                if digest not in cas.sizes:
                    cas.commit_page(digest, payload, raw_len, comp_len,
                                    pmode)
                if cas.add_ref(self.owner, digest):
                    self._page_raw_total += raw_len
                    self._page_comp_total += comp_len
            self._blobs[image_id] = frame
            self._sizes[image_id] = (uncompressed, compressed)
            self._stored_mode[image_id] = mode
            self._manifest_sizes[image_id] = manifest_sizes
            self._manifests[image_id] = digests
            if meta_size is not None:
                self._meta_sizes[image_id] = meta_size
            if was_cached:
                self._cached.add(image_id)
            self._frame_raw_total += man_raw
            self._frame_comp_total += man_comp
            del self._tombstones[image_id]
            raise
        return freed

    def is_thinned(self, image_id):
        """True when ``image_id`` was thinned: its bytes are gone but a
        tombstone keeps its instant replay-revivable."""
        return image_id in self._tombstones

    def tombstone_of(self, image_id):
        """The THINNED tombstone record for ``image_id`` (None when the
        image is not thinned)."""
        tombstone = self._tombstones.get(image_id)
        return dict(tombstone) if tombstone is not None else None

    def thinned_ids(self):
        """Sorted ids of every thinned (tombstoned) checkpoint."""
        return sorted(self._tombstones)

    @property
    def tombstones(self):
        """``{image id: tombstone record}`` for every thinned image."""
        return {image_id: dict(ts)
                for image_id, ts in self._tombstones.items()}

    def reconcile_tombstones(self):
        """Drop tombstones that can no longer serve a replay-based
        revive: the image's blob is (still) stored intact — the thin
        never completed, the intact image wins — or the anchor the
        tombstone replays from is gone or unreadable.  Returns the list
        of ``{"image_id", "reason"}`` drops (the fsck and prune paths
        fold it into their reports)."""
        dropped = []
        for image_id in sorted(self._tombstones):
            anchor_id = self._tombstones[image_id].get("anchor_id")
            reason = None
            if image_id in self._blobs:
                reason = "image intact"
            elif anchor_id is None or anchor_id not in self._blobs:
                reason = "anchor gone"
            elif not self.blob_ok(anchor_id)[0]:
                reason = "anchor unreadable"
            if reason is not None:
                del self._tombstones[image_id]
                dropped.append({"image_id": image_id, "reason": reason})
        return dropped

    def export_tombstones(self, log_data=None):
        """Serialize the tombstones (plus, optionally, the replay-log
        segment that re-derives them) as one TLV stream — the
        pre-thinned-recording fixture format."""
        from repro.common.serial import RecordWriter

        writer = RecordWriter(kind=STREAM_KIND_THIN)
        for image_id in sorted(self._tombstones):
            payload = json.dumps(
                self._tombstones[image_id], sort_keys=True,
                separators=(",", ":")).encode("utf-8")
            writer.write(REC_THIN_TOMBSTONE, payload)
        if log_data:
            writer.write(REC_THIN_LOG, bytes(log_data))
        return writer.getvalue()

    def import_tombstones(self, data):
        """Load tombstone records from :meth:`export_tombstones` bytes.

        Unknown record tags are skipped (forward compatibility); a
        tombstone for an image this store holds intact is *not* imported
        (the intact image wins, exactly as in
        :meth:`reconcile_tombstones`).  Returns ``(loaded_count,
        embedded_log_bytes_or_None)``.
        """
        from repro.common.serial import RecordReader

        loaded = 0
        log_data = None
        for tag, payload, _offset in RecordReader(
                data, expect_kind=STREAM_KIND_THIN):
            if tag == REC_THIN_TOMBSTONE:
                tombstone = json.loads(payload.decode("utf-8"))
                image_id = tombstone.get("image_id")
                if image_id is None or image_id in self._blobs:
                    continue
                self._tombstones[image_id] = tombstone
                loaded += 1
            elif tag == REC_THIN_LOG:
                log_data = payload
        return loaded, log_data

    # ------------------------------------------------------------------ #
    # Base-manifest pins (branchable revive)

    @property
    def base_manifests(self):
        """``{source image id: digest tuple}`` of committed pins."""
        return dict(self._base_manifests)

    def pin_base_manifest(self, source_id, digests):
        """Take owner references on a source checkpoint's page digests.

        A branch forked from another owner's checkpoint pins the
        checkpoint chain's manifests under *its own* owner bucket, so
        (a) the parent pruning the source never reclaims pages the
        branch still demand-pages, and (b) the branch's first own
        checkpoints dedup against the base — only diverged pages cost
        bytes.  Pinned bytes are charged to the branch's owner-logical
        totals exactly like stored pages.

        The pin commits (``_base_manifests``) only after every ref is
        taken: a crash mid-loop (failpoint ``revive.branch.refs``)
        leaves partial raw refs that :meth:`recover`'s owner-scoped
        rebuild wipes, because no committed record derives them.  An
        injected transient fault rolls the partial refs back.
        """
        digests = tuple(digests)
        if source_id in self._base_manifests:
            return 0
        cas = self.cas
        pinned_bytes = 0
        taken = []
        midpoint = len(digests) // 2
        try:
            for index, digest in enumerate(digests):
                if index == midpoint:
                    self.faults.check(FP_BRANCH_REFS)
                if cas.add_ref(self.owner, digest):
                    raw_len, comp_len = cas.sizes.get(digest, (0, 0))
                    self._page_raw_total += raw_len
                    self._page_comp_total += comp_len
                    mode = cas.mode.get(digest, self.compress)
                    pinned_bytes += comp_len if mode else raw_len
                taken.append(digest)
        except InjectedFault:
            for digest in reversed(taken):
                self._unref(digest)
            raise
        self._base_manifests[source_id] = digests
        return pinned_bytes

    def release_base_manifests(self):
        """Drop every base-manifest pin; returns owner-logical bytes
        freed.  Deleting a branch releases exactly its private pages:
        base pages still referenced by the parent or a sibling survive."""
        freed = 0
        for digests in self._base_manifests.values():
            for digest in digests:
                freed += self._unref(digest)
        self._base_manifests.clear()
        return freed

    # ------------------------------------------------------------------ #
    # Compaction

    def compact(self, dead_fraction=DEFAULT_DEAD_FRACTION, charge_time=True):
        """Reclaim orphaned CAS pages and rewrite fragmented extents
        (see :meth:`PageCAS.compact`); time is charged to this storage's
        clock.  With a shared CAS prefer the fleet-level entry point,
        which charges the service clock instead of one member's."""
        before = self.cas.orphans_reclaimed
        report = self.cas.compact(
            dead_fraction=dead_fraction,
            clock=self.clock if charge_time else None,
            costs=self.costs if charge_time else None,
        )
        reclaimed = self.cas.orphans_reclaimed - before
        if reclaimed:
            self._m_orphans.inc(reclaimed)
        self._sync_page_totals()
        return report

    def _sync_page_totals(self):
        """Recompute the owner-logical page totals from the CAS (used
        after operations that may reclaim pages out from under manifests:
        compaction orphan sweeps, fsck)."""
        raw, comp = self.cas.owner_logical_totals(self.owner)
        self._page_raw_total = raw
        self._page_comp_total = comp

    # ------------------------------------------------------------------ #
    # Recovery

    def recover(self, fsstore=None):
        """Post-crash fsck of the image store.

        Phases: (1) drop torn/corrupt manifest frames; (2) discard
        torn/corrupt CAS pages (content hash mismatch, or payloads that
        never committed); (3) drop manifests referencing missing digests
        — a dangling manifest cannot revive; (4) rebuild *this owner's*
        refcounts from the surviving manifests and reclaim pages no owner
        references (other owners' counts are never touched, so one
        session's recovery cannot reclaim pages a fleet peer still
        needs); (5) run :func:`verify_chain` and delete any image it
        flags, iterating to a fixpoint (then re-reclaim any pages those
        drops orphaned); (6) recompute the owner-logical totals from what
        survived.  When ``fsstore`` is given, the file-system snapshot
        bindings of dropped checkpoints are unprotected so the LFS
        cleaner can reclaim them.

        Returns a report dict; ``verify_ok`` is True when the surviving
        store passes a final verification pass.
        """
        from repro.checkpoint.verify import verify_chain

        cas = self.cas
        report = {
            "torn_dropped": [],
            "chain_dropped": [],
            "manifest_dropped": [],
            "cas_pages_dropped": 0,
            "cas_orphans_reclaimed": 0,
            "verify_ok": True,
            "remaining": 0,
        }

        def forget(image_id):
            self._blobs.pop(image_id, None)
            self._sizes.pop(image_id, None)
            self._meta_sizes.pop(image_id, None)
            self._manifests.pop(image_id, None)
            self._manifest_sizes.pop(image_id, None)
            self._stored_mode.pop(image_id, None)
            self._cached.discard(image_id)
            if fsstore is not None:
                try:
                    fsstore.fs.unprotect_checkpoint(image_id)
                except SnapshotError:
                    pass

        # Phase 1: torn/corrupt manifest frames.
        for image_id in self.stored_ids():
            ok, reason = self.blob_ok(image_id)
            if not ok:
                forget(image_id)
                report["torn_dropped"].append({"image_id": image_id,
                                               "reason": reason})

        # Phase 2: CAS page integrity.  Queued appends nobody references
        # were in flight when the crash hit — those writes are gone.
        report["cas_pages_dropped"] += cas.drop_uncommitted()
        report["cas_queued_dropped"] = cas.drop_queued_orphans()
        for digest in list(cas.pages):
            if page_digest(cas.pages[digest]) != digest:
                cas.reclaim_page(digest)
                report["cas_pages_dropped"] += 1

        # Phase 3: manifests must resolve.  A frame injected without
        # bookkeeping (or recovered from a foreign store) gets its
        # manifest rebuilt from the blob itself.
        for image_id in self.stored_ids():
            digests = self._manifests.get(image_id)
            if digests is None:
                try:
                    frame = self._blobs[image_id]
                    _magic, raw_len, blob_len, _crc = _TRAILER.unpack(
                        frame[-_TRAILER.size:])
                    image = CheckpointImage.deserialize(
                        zlib.decompress(frame[:-_TRAILER.size]))
                    manifest = image.manifest()
                    digests = tuple(manifest[key]
                                    for key in sorted(manifest))
                    if not image.page_digests:
                        digests = ()  # v2 blob: pages inline
                    self._manifests[image_id] = digests
                    self._manifest_sizes[image_id] = (raw_len, blob_len)
                    self._stored_mode.setdefault(image_id, self.compress)
                except Exception:
                    forget(image_id)
                    report["torn_dropped"].append(
                        {"image_id": image_id, "reason": "corrupt: undecodable"})
                    continue
            if any(digest not in cas.pages for digest in digests):
                forget(image_id)
                report["manifest_dropped"].append(image_id)

        # Phase 3b: base-manifest pins must resolve too.  A pin whose
        # digests vanished (the source chain was torn away) is dropped —
        # the branch can no longer demand-page that image.
        report["base_manifests_dropped"] = []
        for source_id in sorted(self._base_manifests):
            if any(digest not in cas.pages
                   for digest in self._base_manifests[source_id]):
                del self._base_manifests[source_id]
                report["base_manifests_dropped"].append(source_id)

        def rebuild_refs():
            self._manifests = {image_id: self._manifests.get(image_id, ())
                               for image_id in self._blobs}
            # Owner refs derive from committed state only: surviving
            # manifests plus committed base-manifest pins.  Partial pins
            # from a crash mid-``pin_base_manifest`` have no committed
            # record and are wiped here — the branch-fork fsck.
            derived = list(self._manifests.values())
            derived.extend(self._base_manifests.values())
            reclaimed = cas.rebuild_owner_refs(self.owner, derived)
            report["cas_orphans_reclaimed"] += reclaimed

        # Phase 4: this owner's refcounts come from its surviving
        # manifests; anything no owner references is an orphan.
        rebuild_refs()

        # Phase 5: chain repair to fixpoint — each pass can only delete,
        # so the loop is bounded by the number of stored images.
        verdict = verify_chain(self, fsstore)
        for _ in range(len(self._blobs)):
            flagged = sorted({issue.image_id for issue in verdict.issues
                              if issue.image_id in self._blobs})
            if not flagged:
                break
            for image_id in flagged:
                forget(image_id)
                report["chain_dropped"].append(image_id)
            rebuild_refs()
            verdict = verify_chain(self, fsstore)
        report["verify_ok"] = verdict.ok

        # Phase 5b: reconcile THINNED tombstones against the survivors.
        # An imported tombstone may conflict with an intact image (the
        # image wins); chain repair may have dropped an anchor out from
        # under a tombstone (unreplayable — dropped too).  Partial
        # unrefs from a ``thin.drop_refs`` crash were already converged
        # by the owner-scoped ref rebuild above.
        report["tombstones_dropped"] = self.reconcile_tombstones()
        report["tombstones"] = len(self._tombstones)

        # Phase 6: recompute the owner-logical totals from the survivors.
        total_raw = 0
        total_comp = 0
        for image_id in self._blobs:
            man_raw, man_comp = self._manifest_sizes.get(
                image_id, self._sizes.get(image_id, (0, 0)))
            total_raw += man_raw
            total_comp += man_comp
        self._frame_raw_total = total_raw
        self._frame_comp_total = total_comp
        self._sync_page_totals()
        if report["cas_orphans_reclaimed"]:
            self._m_orphans.inc(report["cas_orphans_reclaimed"])
        report["remaining"] = len(self._blobs)
        return report

    def __contains__(self, image_id):
        return image_id in self._blobs

    def __len__(self):
        return len(self._blobs)
