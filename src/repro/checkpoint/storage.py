"""Checkpoint image storage.

A simulated disk for checkpoint images.  It charges the cost model for
writes and reads, tracks compressed and uncompressed sizes (Figure 4 shows
both), and models the page cache: a *cached* read costs a memory copy, an
*uncached* read costs seeks plus sequential transfer — the distinction
behind Figure 7's two revive series ("reviving using checkpoint files that
have been cached due to recent file access more commonly occurs when users
revive a session at a time relatively close to the current time").

Host-side, images are kept zlib-compressed regardless of the *accounting*
mode, so long experiments stay memory-friendly.
"""

import zlib

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import CheckpointError
from repro.checkpoint.image import CheckpointImage


class CheckpointStorage:
    """Stores serialized checkpoint images on a simulated disk."""

    def __init__(self, clock=None, costs=DEFAULT_COSTS, compress=False):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        #: Whether the *accounted* storage format is compressed (the paper
        #: reports both "Process" and "Process (Compressed)" growth rates).
        self.compress = compress
        self._blobs = {}  # image id -> zlib blob
        self._sizes = {}  # image id -> (uncompressed, compressed)
        self._meta_sizes = {}  # image id -> metadata record bytes
        self._cached = set()
        self.total_uncompressed_bytes = 0
        self.total_compressed_bytes = 0
        self.write_count = 0
        self.read_count = 0

    # ------------------------------------------------------------------ #
    # Write path

    def store(self, image, charge_time=True):
        """Serialize and write an image; returns bytes written (as
        accounted, i.e. compressed when compression is enabled)."""
        if image.checkpoint_id in self._blobs:
            raise CheckpointError(
                "checkpoint %d already stored" % image.checkpoint_id
            )
        raw = image.serialize()
        blob = zlib.compress(raw, level=1)
        self._blobs[image.checkpoint_id] = blob
        self._sizes[image.checkpoint_id] = (len(raw), len(blob))
        self._meta_sizes[image.checkpoint_id] = image.metadata_bytes
        self.total_uncompressed_bytes += len(raw)
        self.total_compressed_bytes += len(blob)
        self.write_count += 1
        written = len(blob) if self.compress else len(raw)
        if charge_time:
            if self.compress:
                self.clock.advance_us(self.costs.compress_us(len(raw)))
            self.clock.advance_us(
                self.costs.disk_write_us(written, sequential=True)
            )
        # A freshly written image sits in the page cache.
        self._cached.add(image.checkpoint_id)
        return written

    # ------------------------------------------------------------------ #
    # Read path

    def load(self, image_id, cached=None, metadata_only=False):
        """Read and decode an image.

        ``cached=None`` uses the storage's own cache state; True/False
        force the hot/cold path (benchmarks force both).

        ``metadata_only=True`` charges only for the image's metadata record
        (process/region/page-location tables) — the demand-paged revive
        path, which reads page payloads lazily later.  The returned object
        still carries the pages (the host keeps images whole); only the
        *accounted* I/O differs.
        """
        blob = self._blobs.get(image_id)
        if blob is None:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        uncompressed, compressed = self._sizes[image_id]
        read_bytes = compressed if self.compress else uncompressed
        if metadata_only:
            read_bytes = min(read_bytes, self._meta_sizes[image_id])
        if cached is None:
            cached = image_id in self._cached
        if cached:
            self.clock.advance_us(read_bytes * self.costs.memcpy_us_per_byte)
        else:
            self.clock.advance_us(
                self.costs.disk_read_us(read_bytes, sequential=False)
            )
            if not metadata_only:
                self._cached.add(image_id)
        self.read_count += 1
        return CheckpointImage.deserialize(zlib.decompress(blob))

    def is_cached(self, image_id):
        return image_id in self._cached

    def evict_all(self):
        """Drop the page cache (forces the Figure 7 uncached path)."""
        self._cached.clear()

    def stored_ids(self):
        return sorted(self._blobs)

    def size_of(self, image_id):
        """``(uncompressed, compressed)`` byte sizes of one image."""
        if image_id not in self._sizes:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        return self._sizes[image_id]

    def delete(self, image_id):
        """Remove a stored image (checkpoint pruning); returns the bytes
        freed (as accounted)."""
        if image_id not in self._blobs:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        uncompressed, compressed = self._sizes.pop(image_id)
        del self._blobs[image_id]
        del self._meta_sizes[image_id]
        self._cached.discard(image_id)
        freed = compressed if self.compress else uncompressed
        self.total_uncompressed_bytes -= uncompressed
        self.total_compressed_bytes -= compressed
        return freed

    def __contains__(self, image_id):
        return image_id in self._blobs

    def __len__(self):
        return len(self._blobs)
