"""Checkpoint image storage.

A simulated disk for checkpoint images.  It charges the cost model for
writes and reads, tracks compressed and uncompressed sizes (Figure 4 shows
both), and models the page cache: a *cached* read costs a memory copy, an
*uncached* read costs seeks plus sequential transfer — the distinction
behind Figure 7's two revive series ("reviving using checkpoint files that
have been cached due to recent file access more commonly occurs when users
revive a session at a time relatively close to the current time").

Two on-disk layouts coexist:

* **Whole blob** (``page_store=False``, serial format v2) — each image is
  one monolithic zlib frame; identical pages shared across the chain are
  written and accounted once per checkpoint.
* **Content-addressed page store** (``page_store=True``, the default,
  serial format v3) — page payloads are stored once in a refcounted CAS
  keyed by SHA-1 digest and shared across every image that saved an
  identical page; images serialize as metadata plus a digest manifest.
  ``store`` dedups against live pages, ``delete`` decrements refcounts and
  reclaims only orphaned pages, and :meth:`compact` rewrites fragmented
  page extents after pruning.  v2 blobs injected into a CAS store remain
  readable (their pages are inline, so their manifest is empty).

Accounting: per-image *logical* sizes (:meth:`size_of`, what a full read
of that image costs) stay the manifest plus every referenced page, while
``total_*_bytes`` are *physical* — each unique CAS page is charged once,
which is exactly the Figure-4 dedup win.  The accounted mode (compressed
vs raw) is snapshotted per blob and per page at store time, so toggling
``compress`` between ``store`` and ``delete`` cannot drift the totals.

Host-side, payloads are kept zlib-compressed regardless of the
*accounting* mode, so long experiments stay memory-friendly.

Durability: each stored manifest/blob carries a fixed-size trailer —
magic, uncompressed length, compressed length, CRC-32 of the compressed
bytes — so a write torn by a crash (the ``storage.store.pre_commit``
failpoint) is detected on read instead of silently misdecoding.  The CAS
write path adds two more sites: ``storage.cas.page_append`` (crash leaves
a torn uncommitted page, with earlier pages committed but unreferenced)
and ``storage.cas.manifest_commit`` (crash strands freshly committed
pages as orphans).  :meth:`recover` is a full fsck: it drops torn frames,
discards torn/corrupt CAS pages, drops manifests with dangling digests,
rebuilds refcounts from the surviving manifests, reclaims orphans,
repairs the chain with :func:`repro.checkpoint.verify.verify_chain` to a
fixpoint, and recomputes the physical totals.  ``store`` stays
transactional for *transient* faults: an :class:`InjectedFault` rolls
back every page committed by that call, so a failed store leaves the
totals untouched (and never double-counts on retry).
"""

import struct
import zlib
from dataclasses import dataclass

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import CheckpointError, SnapshotError
from repro.common.faults import InjectedCrash, InjectedFault, resolve_faults
from repro.common.telemetry import resolve_telemetry
from repro.checkpoint.image import (
    CheckpointImage,
    FORMAT_VERSION_MANIFEST,
    page_digest,
)

#: Blob trailer: magic, uncompressed length, compressed length, CRC-32 of
#: the compressed payload.  Written after the payload, so a torn write is
#: missing (or truncating) it — exactly how it is detected.
_TRAILER = struct.Struct("<4sIII")
TRAILER_MAGIC = b"DJCK"

FP_STORE_PRE_COMMIT = "storage.store.pre_commit"
FP_CAS_PAGE_APPEND = "storage.cas.page_append"
FP_CAS_MANIFEST_COMMIT = "storage.cas.manifest_commit"

#: CAS pages are appended to fixed-size extents (compressed bytes).  A
#: reclaimed page leaves dead bytes in its extent; :meth:`compact`
#: rewrites extents whose dead fraction crosses the threshold.
EXTENT_TARGET_BYTES = 256 * 1024
DEFAULT_DEAD_FRACTION = 0.25


class _Extent:
    """One append-only run of compressed page payloads."""

    __slots__ = ("live", "dead", "digests")

    def __init__(self):
        self.live = 0
        self.dead = 0
        self.digests = set()


@dataclass
class StoreReceipt:
    """What one ``store`` call actually wrote (as accounted)."""

    image_id: int
    accounted_bytes: int
    pages_stored: int = 0
    pages_deduped: int = 0
    dedup_bytes_saved: int = 0


class CheckpointStorage:
    """Stores serialized checkpoint images on a simulated disk."""

    def __init__(self, clock=None, costs=DEFAULT_COSTS, compress=False,
                 faults=None, telemetry=None, page_store=True):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        #: Whether the *accounted* storage format is compressed (the paper
        #: reports both "Process" and "Process (Compressed)" growth rates).
        self.compress = compress
        #: Content-addressed page store (v3 manifests) vs whole blobs (v2).
        self.page_store = page_store
        self.faults = resolve_faults(faults)
        self._blobs = {}  # image id -> framed blob (zlib payload + trailer)
        self._sizes = {}  # image id -> logical (uncompressed, compressed)
        self._meta_sizes = {}  # image id -> metadata record bytes
        self._cached = set()
        # Manifest bookkeeping (one entry per stored image).
        self._manifests = {}  # image id -> tuple of page digests (key order)
        self._manifest_sizes = {}  # image id -> (raw, compressed) blob bytes
        self._stored_mode = {}  # image id -> accounted mode at store time
        # The content-addressed store proper.
        self._cas = {}  # digest -> page payload bytes
        self._cas_refs = {}  # digest -> (image, key) reference count
        self._cas_sizes = {}  # digest -> (raw, compressed) page bytes
        self._cas_mode = {}  # digest -> accounted mode at first store
        self._cas_extent = {}  # digest -> extent id
        self._extents = {}  # extent id -> _Extent
        self._extent_seq = 0
        self._current_extent = None
        # Physical totals: manifests plus unique CAS pages, charged once.
        self.total_uncompressed_bytes = 0
        self.total_compressed_bytes = 0
        self.write_count = 0
        self.read_count = 0
        self.pages_deduped = 0
        self.dedup_bytes_saved = 0
        self.cas_orphans_reclaimed = 0
        self.compaction_runs = 0
        self.compaction_bytes_reclaimed = 0
        metrics = resolve_telemetry(telemetry)
        self._m_pages_deduped = metrics.counter("storage.pages_deduped")
        self._m_dedup_saved = metrics.counter("storage.dedup_bytes_saved")
        self._m_orphans = metrics.counter("storage.cas_orphans_reclaimed")

    def bind_faults(self, faults):
        self.faults = resolve_faults(faults)

    # ------------------------------------------------------------------ #
    # Write path

    def store(self, image, charge_time=True):
        """Serialize and write an image; returns a :class:`StoreReceipt`
        whose ``accounted_bytes`` is the bytes actually written as
        accounted (compressed when compression is enabled, with pages
        already present in the CAS deduplicated away).

        Transactional for transient faults: an :class:`InjectedFault`
        rolls back every page this call committed, so a failed store
        leaves the totals consistent.  An injected *crash* instead leaves
        the on-disk state a real mid-write power cut would — a torn
        frame, a torn page, or committed-but-unreferenced pages —
        before propagating.
        """
        if image.checkpoint_id in self._blobs:
            raise CheckpointError(
                "checkpoint %d already stored" % image.checkpoint_id
            )
        if not self.page_store:
            return self._store_blob(image, charge_time)
        return self._store_manifest(image, charge_time)

    def _frame(self, raw):
        blob = zlib.compress(raw, level=1)
        return blob, blob + _TRAILER.pack(
            TRAILER_MAGIC, len(raw), len(blob), zlib.crc32(blob))

    def _crash_torn_frame(self, image_id, frame):
        """The host died mid-write: half the frame made it to disk,
        trailer missing.  No cache entry — the machine is gone."""
        torn = frame[:max(1, len(frame) // 2)]
        self._blobs[image_id] = torn
        self._sizes[image_id] = (0, len(torn))
        self._meta_sizes[image_id] = 0
        self.total_compressed_bytes += len(torn)

    def _store_blob(self, image, charge_time):
        """Legacy whole-blob write path (serial format v2)."""
        raw = image.serialize()
        blob, frame = self._frame(raw)
        mode = self.compress
        written = len(blob) if mode else len(raw)
        image_id = image.checkpoint_id
        try:
            # A transient fault (InjectedFault/IOError) raises here,
            # before any mutation: the store simply did not happen.
            self.faults.check(FP_STORE_PRE_COMMIT)
        except InjectedCrash:
            self._crash_torn_frame(image_id, frame)
            raise
        if charge_time:
            if mode:
                self.clock.advance_us(self.costs.compress_us(len(raw)))
            self.clock.advance_us(
                self.costs.disk_write_us(written, sequential=True)
            )
        self._blobs[image_id] = frame
        self._sizes[image_id] = (len(raw), len(blob))
        self._meta_sizes[image_id] = image.metadata_bytes
        self._manifests[image_id] = ()
        self._manifest_sizes[image_id] = (len(raw), len(blob))
        self._stored_mode[image_id] = mode
        self.total_uncompressed_bytes += len(raw)
        self.total_compressed_bytes += len(blob)
        self.write_count += 1
        # A freshly written image sits in the page cache.
        self._cached.add(image_id)
        return StoreReceipt(image_id=image_id, accounted_bytes=written,
                            pages_stored=len(image.pages))

    def _store_manifest(self, image, charge_time):
        """CAS write path: append new pages, then commit the manifest."""
        image_id = image.checkpoint_id
        mode = self.compress
        manifest = image.manifest()
        contents = {}
        for key in manifest:
            digest = manifest[key]
            content = image.pages.get(key)
            if content is None:
                content = self._cas.get(digest)
                if content is None or digest not in self._cas_refs:
                    raise CheckpointError(
                        "page %r of checkpoint %d has no payload and is "
                        "not in the page store" % (key, image_id))
            contents[digest] = bytes(content)
        # Serialize the manifest from the digests just computed (no
        # second hashing pass inside serialize).
        image.page_digests = dict(manifest)
        raw = image.serialize(format=FORMAT_VERSION_MANIFEST)
        blob, frame = self._frame(raw)
        # Dedup analysis, before any mutation.  ``ordered`` has one digest
        # per page key; a digest already live in the CAS (or repeated
        # within this image) is a dedup hit.
        ordered = tuple(manifest[key] for key in sorted(manifest))
        sizes = {}
        for digest in set(ordered):
            if digest in self._cas_sizes:
                sizes[digest] = self._cas_sizes[digest]
            else:
                content = contents[digest]
                sizes[digest] = (
                    len(content), len(zlib.compress(content, 1)))

        def accounted(digest):
            raw_len, comp_len = sizes[digest]
            return comp_len if mode else raw_len

        new_digests = []
        dup_count = 0
        dup_saved = 0
        seen = set()
        for digest in ordered:
            if digest in self._cas_refs or digest in seen:
                dup_count += 1
                dup_saved += accounted(digest)
            else:
                seen.add(digest)
                new_digests.append(digest)
        new_bytes = sum(accounted(digest) for digest in new_digests)
        new_raw_bytes = sum(sizes[digest][0] for digest in new_digests)
        written = (len(blob) if mode else len(raw)) + new_bytes
        raw_logical = len(raw) + sum(sizes[d][0] for d in ordered)
        comp_logical = len(blob) + sum(sizes[d][1] for d in ordered)
        try:
            self.faults.check(FP_STORE_PRE_COMMIT)
        except InjectedCrash:
            self._crash_torn_frame(image_id, frame)
            raise
        committed = []
        index = -1
        try:
            for index, digest in enumerate(new_digests):
                # Crash here tears the page being appended; every earlier
                # page of this store stays committed with no manifest
                # referencing it yet.
                self.faults.check(FP_CAS_PAGE_APPEND)
                raw_len, comp_len = sizes[digest]
                self._cas[digest] = contents[digest]
                self._cas_sizes[digest] = (raw_len, comp_len)
                self._cas_mode[digest] = mode
                self._cas_refs[digest] = 0  # referenced at manifest commit
                self._extent_append(digest, comp_len)
                self.total_uncompressed_bytes += raw_len
                self.total_compressed_bytes += comp_len
                committed.append(digest)
            # Crash here strands every page of this store as an orphan:
            # committed payloads, zero references, no manifest.
            self.faults.check(FP_CAS_MANIFEST_COMMIT)
        except InjectedCrash as crash:
            if crash.site == FP_CAS_PAGE_APPEND and 0 <= index:
                digest = new_digests[index]
                content = contents[digest]
                self._cas[digest] = content[:max(1, len(content) // 2)]
            raise
        except InjectedFault:
            # Transient fault: roll back every page this call committed.
            for digest in committed:
                self._rollback_page(digest)
            raise
        if charge_time:
            if mode:
                self.clock.advance_us(
                    self.costs.compress_us(len(raw) + new_raw_bytes))
            self.clock.advance_us(
                self.costs.disk_write_us(written, sequential=True))
        self._blobs[image_id] = frame
        self._sizes[image_id] = (raw_logical, comp_logical)
        self._meta_sizes[image_id] = image.metadata_bytes
        self._manifests[image_id] = ordered
        self._manifest_sizes[image_id] = (len(raw), len(blob))
        self._stored_mode[image_id] = mode
        for digest in ordered:
            self._cas_refs[digest] = self._cas_refs.get(digest, 0) + 1
        self.total_uncompressed_bytes += len(raw)
        self.total_compressed_bytes += len(blob)
        self.write_count += 1
        self._cached.add(image_id)
        if dup_count:
            self.pages_deduped += dup_count
            self.dedup_bytes_saved += dup_saved
            self._m_pages_deduped.inc(dup_count)
            self._m_dedup_saved.inc(dup_saved)
        return StoreReceipt(
            image_id=image_id,
            accounted_bytes=written,
            pages_stored=len(new_digests),
            pages_deduped=dup_count,
            dedup_bytes_saved=dup_saved,
        )

    # ------------------------------------------------------------------ #
    # Extents

    def _extent_append(self, digest, comp_len):
        eid = self._current_extent
        extent = self._extents.get(eid) if eid is not None else None
        if extent is None or extent.live + extent.dead >= EXTENT_TARGET_BYTES:
            self._extent_seq += 1
            eid = self._extent_seq
            extent = _Extent()
            self._extents[eid] = extent
            self._current_extent = eid
        extent.live += comp_len
        extent.digests.add(digest)
        self._cas_extent[digest] = eid

    def _rollback_page(self, digest):
        """Undo an uncommitted page append (transient-fault rollback):
        the write never happened, so no dead bytes are left behind."""
        raw_len, comp_len = self._cas_sizes.pop(digest)
        self._cas_mode.pop(digest, None)
        self._cas_refs.pop(digest, None)
        self._cas.pop(digest, None)
        eid = self._cas_extent.pop(digest, None)
        if eid is not None:
            extent = self._extents[eid]
            extent.live -= comp_len
            extent.digests.discard(digest)
        self.total_uncompressed_bytes -= raw_len
        self.total_compressed_bytes -= comp_len

    def _reclaim_page(self, digest):
        """Free a committed CAS page; returns the bytes freed (as
        accounted at its store time).  Its extent bytes turn dead."""
        raw_len, comp_len = self._cas_sizes.pop(digest)
        mode = self._cas_mode.pop(digest, self.compress)
        self._cas_refs.pop(digest, None)
        self._cas.pop(digest, None)
        eid = self._cas_extent.pop(digest, None)
        if eid is not None:
            extent = self._extents.get(eid)
            if extent is not None:
                extent.live -= comp_len
                extent.dead += comp_len
                extent.digests.discard(digest)
        self.total_uncompressed_bytes -= raw_len
        self.total_compressed_bytes -= comp_len
        return comp_len if mode else raw_len

    def _unref(self, digest):
        """Drop one manifest reference; reclaims the page at zero."""
        refs = self._cas_refs.get(digest)
        if refs is None:
            return 0
        if refs > 1:
            self._cas_refs[digest] = refs - 1
            return 0
        return self._reclaim_page(digest)

    # ------------------------------------------------------------------ #
    # Frame integrity

    def blob_ok(self, image_id):
        """Validate one stored frame's trailer; ``(ok, reason)``."""
        frame = self._blobs.get(image_id)
        if frame is None:
            return False, "missing"
        if len(frame) <= _TRAILER.size:
            return False, "torn: frame shorter than trailer"
        magic, _raw_len, blob_len, crc = _TRAILER.unpack(
            frame[-_TRAILER.size:])
        if magic != TRAILER_MAGIC:
            return False, "torn: trailer magic missing"
        blob = frame[:-_TRAILER.size]
        if blob_len != len(blob):
            return False, "torn: payload length mismatch"
        if crc != zlib.crc32(blob):
            return False, "corrupt: payload checksum mismatch"
        return True, None

    # ------------------------------------------------------------------ #
    # Read path

    def load(self, image_id, cached=None, metadata_only=False):
        """Read and decode an image.

        ``cached=None`` uses the storage's own cache state; True/False
        force the hot/cold path (benchmarks force both).

        ``metadata_only=True`` charges only for the image's metadata record
        (process/region/page-location tables) — the demand-paged revive
        path, which reads page payloads lazily later.  For a v3 manifest
        the returned image then carries :attr:`page_digests` but no
        payloads; the demand pager resolves digests via :meth:`cas_page`.
        A full load hydrates ``pages`` from the CAS, so callers see the
        same object either format produced.

        A torn or corrupt frame — or a manifest whose digest cannot be
        resolved — raises :class:`CheckpointError` (after charging for
        the attempted read; the seek still happened).
        """
        frame = self._blobs.get(image_id)
        if frame is None:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        ok, reason = self.blob_ok(image_id)
        if not ok:
            self.clock.advance_us(
                self.costs.disk_read_us(len(frame), sequential=False))
            self.read_count += 1
            raise CheckpointError(
                "checkpoint %d unreadable (%s)" % (image_id, reason))
        blob = frame[:-_TRAILER.size]
        uncompressed, compressed = self._sizes[image_id]
        read_bytes = compressed if self.compress else uncompressed
        if metadata_only:
            read_bytes = min(read_bytes, self._meta_sizes[image_id])
        if cached is None:
            cached = image_id in self._cached
        if cached:
            self.clock.advance_us(read_bytes * self.costs.memcpy_us_per_byte)
        else:
            self.clock.advance_us(
                self.costs.disk_read_us(read_bytes, sequential=False)
            )
            if not metadata_only:
                self._cached.add(image_id)
        self.read_count += 1
        image = CheckpointImage.deserialize(zlib.decompress(blob))
        if not metadata_only and image.page_digests and not image.pages:
            for key, digest in sorted(image.page_digests.items()):
                content = self._cas.get(digest)
                if content is None:
                    raise CheckpointError(
                        "checkpoint %d unreadable (missing page %r in "
                        "page store)" % (image_id, key))
                image.pages[key] = content
        return image

    def cas_page(self, digest):
        """Resolve one page payload by digest (None when absent) — the
        demand pager's per-page read."""
        return self._cas.get(digest)

    def is_cached(self, image_id):
        return image_id in self._cached

    def evict_all(self):
        """Drop the page cache (forces the Figure 7 uncached path)."""
        self._cached.clear()

    def stored_ids(self):
        return sorted(self._blobs)

    def size_of(self, image_id):
        """Logical ``(uncompressed, compressed)`` byte sizes of one image
        — what a full read of it costs, counting every referenced page."""
        if image_id not in self._sizes:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        return self._sizes[image_id]

    def manifest_digests(self, image_id):
        """The stored page-digest manifest of one image (empty for whole
        blobs, whose pages are inline)."""
        if image_id not in self._blobs:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        return self._manifests.get(image_id, ())

    def cas_entries(self):
        """``{digest: {"refs", "uncompressed", "compressed"}}`` for every
        committed CAS page (the property-test observation surface)."""
        return {
            digest: {
                "refs": self._cas_refs.get(digest, 0),
                "uncompressed": raw_len,
                "compressed": comp_len,
            }
            for digest, (raw_len, comp_len) in self._cas_sizes.items()
        }

    def fragmentation(self):
        """Live/dead byte split across page extents."""
        live = sum(extent.live for extent in self._extents.values())
        dead = sum(extent.dead for extent in self._extents.values())
        return {"extents": len(self._extents),
                "live_bytes": live, "dead_bytes": dead}

    def dedup_stats(self):
        """Cumulative dedup and reclamation counters."""
        return {
            "pages_deduped": self.pages_deduped,
            "dedup_bytes_saved": self.dedup_bytes_saved,
            "cas_orphans_reclaimed": self.cas_orphans_reclaimed,
            "cas_pages": len(self._cas_sizes),
            "compaction_runs": self.compaction_runs,
            "compaction_bytes_reclaimed": self.compaction_bytes_reclaimed,
        }

    def delete(self, image_id):
        """Remove a stored image (checkpoint pruning); returns the bytes
        freed as accounted *at store time* — the manifest plus any CAS
        page whose last reference this was."""
        if image_id not in self._blobs:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        uncompressed, compressed = self._sizes.pop(image_id)
        mode = self._stored_mode.pop(image_id, self.compress)
        manifest_sizes = self._manifest_sizes.pop(image_id, None)
        digests = self._manifests.pop(image_id, ())
        del self._blobs[image_id]
        self._meta_sizes.pop(image_id, None)
        self._cached.discard(image_id)
        if manifest_sizes is None:
            # Torn or externally injected frame: only its raw frame bytes
            # were ever accounted.
            manifest_sizes = (uncompressed, compressed)
        man_raw, man_comp = manifest_sizes
        freed = man_comp if mode else man_raw
        self.total_uncompressed_bytes -= man_raw
        self.total_compressed_bytes -= man_comp
        for digest in digests:
            freed += self._unref(digest)
        return freed

    # ------------------------------------------------------------------ #
    # Compaction

    def compact(self, dead_fraction=DEFAULT_DEAD_FRACTION, charge_time=True):
        """Reclaim orphaned CAS pages and rewrite fragmented extents.

        Any page with zero references (crash leftovers, or entries whose
        last manifest was pruned out from under them) is reclaimed first;
        then every extent whose dead fraction is at least
        ``dead_fraction`` has its live pages rewritten into the current
        append head (charging sequential read + write of the live bytes)
        and its dead bytes reclaimed.  Returns a report dict.
        """
        report = {
            "orphans_reclaimed": 0,
            "extents_rewritten": 0,
            "pages_moved": 0,
            "bytes_reclaimed": 0,
        }
        # Uncommitted (torn) payloads: present in the CAS map but never
        # accounted — discard outright.
        for digest in [d for d in self._cas if d not in self._cas_sizes]:
            del self._cas[digest]
            self._cas_refs.pop(digest, None)
            report["orphans_reclaimed"] += 1
        for digest in [d for d, refs in self._cas_refs.items() if refs <= 0]:
            self._reclaim_page(digest)
            report["orphans_reclaimed"] += 1
        if report["orphans_reclaimed"]:
            self.cas_orphans_reclaimed += report["orphans_reclaimed"]
            self._m_orphans.inc(report["orphans_reclaimed"])
        for eid in sorted(self._extents):
            extent = self._extents.get(eid)
            if extent is None:
                continue
            total = extent.live + extent.dead
            if total == 0:
                if eid != self._current_extent:
                    del self._extents[eid]
                continue
            if extent.dead == 0 or extent.dead / total < dead_fraction:
                continue
            if eid == self._current_extent:
                # Never rewrite an extent into itself: retire the append
                # head and let the move open a fresh one.
                self._current_extent = None
            if charge_time and extent.live:
                self.clock.advance_us(
                    self.costs.disk_read_us(extent.live, sequential=True))
                self.clock.advance_us(
                    self.costs.disk_write_us(extent.live, sequential=True))
            for digest in sorted(extent.digests):
                self._extent_append(digest, self._cas_sizes[digest][1])
                report["pages_moved"] += 1
            del self._extents[eid]
            report["extents_rewritten"] += 1
            report["bytes_reclaimed"] += extent.dead
        self.compaction_runs += 1
        self.compaction_bytes_reclaimed += report["bytes_reclaimed"]
        return report

    # ------------------------------------------------------------------ #
    # Recovery

    def recover(self, fsstore=None):
        """Post-crash fsck of the image store.

        Phases: (1) drop torn/corrupt manifest frames; (2) discard
        torn/corrupt CAS pages (content hash mismatch, or payloads that
        never committed); (3) drop manifests referencing missing digests
        — a dangling manifest cannot revive; (4) rebuild refcounts from
        the surviving manifests and reclaim orphaned pages; (5) run
        :func:`verify_chain` and delete any image it flags, iterating to
        a fixpoint (then re-reclaim any pages those drops orphaned); (6)
        recompute the physical totals from what survived.  When
        ``fsstore`` is given, the file-system snapshot bindings of
        dropped checkpoints are unprotected so the LFS cleaner can
        reclaim them.

        Returns a report dict; ``verify_ok`` is True when the surviving
        store passes a final verification pass.
        """
        from repro.checkpoint.verify import verify_chain

        report = {
            "torn_dropped": [],
            "chain_dropped": [],
            "manifest_dropped": [],
            "cas_pages_dropped": 0,
            "cas_orphans_reclaimed": 0,
            "verify_ok": True,
            "remaining": 0,
        }

        def forget(image_id):
            self._blobs.pop(image_id, None)
            self._sizes.pop(image_id, None)
            self._meta_sizes.pop(image_id, None)
            self._manifests.pop(image_id, None)
            self._manifest_sizes.pop(image_id, None)
            self._stored_mode.pop(image_id, None)
            self._cached.discard(image_id)
            if fsstore is not None:
                try:
                    fsstore.fs.unprotect_checkpoint(image_id)
                except SnapshotError:
                    pass

        # Phase 1: torn/corrupt manifest frames.
        for image_id in self.stored_ids():
            ok, reason = self.blob_ok(image_id)
            if not ok:
                forget(image_id)
                report["torn_dropped"].append({"image_id": image_id,
                                               "reason": reason})

        # Phase 2: CAS page integrity.
        for digest in list(self._cas):
            if digest not in self._cas_sizes:
                # Never committed (torn mid-append): discard outright.
                del self._cas[digest]
                self._cas_refs.pop(digest, None)
                report["cas_pages_dropped"] += 1
            elif page_digest(self._cas[digest]) != digest:
                self._reclaim_page(digest)
                report["cas_pages_dropped"] += 1

        # Phase 3: manifests must resolve.  A frame injected without
        # bookkeeping (or recovered from a foreign store) gets its
        # manifest rebuilt from the blob itself.
        for image_id in self.stored_ids():
            digests = self._manifests.get(image_id)
            if digests is None:
                try:
                    frame = self._blobs[image_id]
                    _magic, raw_len, blob_len, _crc = _TRAILER.unpack(
                        frame[-_TRAILER.size:])
                    image = CheckpointImage.deserialize(
                        zlib.decompress(frame[:-_TRAILER.size]))
                    manifest = image.manifest()
                    digests = tuple(manifest[key]
                                    for key in sorted(manifest))
                    if not image.page_digests:
                        digests = ()  # v2 blob: pages inline
                    self._manifests[image_id] = digests
                    self._manifest_sizes[image_id] = (raw_len, blob_len)
                    self._stored_mode.setdefault(image_id, self.compress)
                except Exception:
                    forget(image_id)
                    report["torn_dropped"].append(
                        {"image_id": image_id, "reason": "corrupt: undecodable"})
                    continue
            if any(digest not in self._cas for digest in digests):
                forget(image_id)
                report["manifest_dropped"].append(image_id)

        def rebuild_refs():
            refs = {}
            for image_id in self._blobs:
                for digest in self._manifests.get(image_id, ()):
                    refs[digest] = refs.get(digest, 0) + 1
            for digest in [d for d in self._cas if d not in refs]:
                if digest in self._cas_sizes:
                    self._reclaim_page(digest)
                else:
                    del self._cas[digest]
                report["cas_orphans_reclaimed"] += 1
            self._cas_refs = refs
            self._manifests = {image_id: self._manifests.get(image_id, ())
                               for image_id in self._blobs}

        # Phase 4: refcounts come from the surviving manifests; anything
        # unreferenced is an orphan.
        rebuild_refs()

        # Phase 5: chain repair to fixpoint — each pass can only delete,
        # so the loop is bounded by the number of stored images.
        verdict = verify_chain(self, fsstore)
        for _ in range(len(self._blobs)):
            flagged = sorted({issue.image_id for issue in verdict.issues
                              if issue.image_id in self._blobs})
            if not flagged:
                break
            for image_id in flagged:
                forget(image_id)
                report["chain_dropped"].append(image_id)
            rebuild_refs()
            verdict = verify_chain(self, fsstore)
        report["verify_ok"] = verdict.ok

        # Phase 6: recompute physical totals from the survivors.
        total_raw = 0
        total_comp = 0
        for image_id in self._blobs:
            man_raw, man_comp = self._manifest_sizes.get(
                image_id, self._sizes.get(image_id, (0, 0)))
            total_raw += man_raw
            total_comp += man_comp
        for raw_len, comp_len in self._cas_sizes.values():
            total_raw += raw_len
            total_comp += comp_len
        self.total_uncompressed_bytes = total_raw
        self.total_compressed_bytes = total_comp
        if report["cas_orphans_reclaimed"]:
            self.cas_orphans_reclaimed += report["cas_orphans_reclaimed"]
            self._m_orphans.inc(report["cas_orphans_reclaimed"])
        report["remaining"] = len(self._blobs)
        return report

    def __contains__(self, image_id):
        return image_id in self._blobs

    def __len__(self):
        return len(self._blobs)
