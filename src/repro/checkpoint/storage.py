"""Checkpoint image storage.

A simulated disk for checkpoint images.  It charges the cost model for
writes and reads, tracks compressed and uncompressed sizes (Figure 4 shows
both), and models the page cache: a *cached* read costs a memory copy, an
*uncached* read costs seeks plus sequential transfer — the distinction
behind Figure 7's two revive series ("reviving using checkpoint files that
have been cached due to recent file access more commonly occurs when users
revive a session at a time relatively close to the current time").

Host-side, images are kept zlib-compressed regardless of the *accounting*
mode, so long experiments stay memory-friendly.

Durability: each stored blob carries a fixed-size trailer — magic,
uncompressed length, compressed length, CRC-32 of the compressed bytes —
so a write torn by a crash (the ``storage.store.pre_commit`` failpoint)
is detected on read instead of silently misdecoding.  :meth:`recover`
drops torn blobs and then repairs the checkpoint chain with
:func:`repro.checkpoint.verify.verify_chain` until the survivors verify
clean.  ``store`` is transactional: all fault/charge steps that can
raise happen before any accounting is mutated, so a failed store leaves
the totals untouched (and never double-counts on retry).
"""

import struct
import zlib

from repro.common.clock import VirtualClock
from repro.common.costs import DEFAULT_COSTS
from repro.common.errors import CheckpointError, SnapshotError
from repro.common.faults import InjectedCrash, resolve_faults
from repro.checkpoint.image import CheckpointImage

#: Blob trailer: magic, uncompressed length, compressed length, CRC-32 of
#: the compressed payload.  Written after the payload, so a torn write is
#: missing (or truncating) it — exactly how it is detected.
_TRAILER = struct.Struct("<4sIII")
TRAILER_MAGIC = b"DJCK"

FP_STORE_PRE_COMMIT = "storage.store.pre_commit"


class CheckpointStorage:
    """Stores serialized checkpoint images on a simulated disk."""

    def __init__(self, clock=None, costs=DEFAULT_COSTS, compress=False,
                 faults=None):
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs
        #: Whether the *accounted* storage format is compressed (the paper
        #: reports both "Process" and "Process (Compressed)" growth rates).
        self.compress = compress
        self.faults = resolve_faults(faults)
        self._blobs = {}  # image id -> framed blob (zlib payload + trailer)
        self._sizes = {}  # image id -> (uncompressed, compressed)
        self._meta_sizes = {}  # image id -> metadata record bytes
        self._cached = set()
        self.total_uncompressed_bytes = 0
        self.total_compressed_bytes = 0
        self.write_count = 0
        self.read_count = 0

    def bind_faults(self, faults):
        self.faults = resolve_faults(faults)

    # ------------------------------------------------------------------ #
    # Write path

    def store(self, image, charge_time=True):
        """Serialize and write an image; returns bytes written (as
        accounted, i.e. compressed when compression is enabled).

        Transactional: everything that can raise (the failpoint check,
        the cost-model charges) runs before any byte of accounting state
        is mutated, so a failed store leaves the totals consistent.  An
        injected *crash* instead commits a deliberately torn frame — the
        on-disk state a real mid-write power cut leaves — before
        propagating.
        """
        if image.checkpoint_id in self._blobs:
            raise CheckpointError(
                "checkpoint %d already stored" % image.checkpoint_id
            )
        raw = image.serialize()
        blob = zlib.compress(raw, level=1)
        frame = blob + _TRAILER.pack(
            TRAILER_MAGIC, len(raw), len(blob), zlib.crc32(blob))
        written = len(blob) if self.compress else len(raw)
        try:
            # A transient fault (InjectedFault/IOError) raises here,
            # before any mutation: the store simply did not happen.
            self.faults.check(FP_STORE_PRE_COMMIT)
        except InjectedCrash:
            # The host died mid-write: half the frame made it to disk,
            # trailer missing.  No cache entry — the machine is gone.
            torn = frame[:max(1, len(frame) // 2)]
            self._blobs[image.checkpoint_id] = torn
            self._sizes[image.checkpoint_id] = (0, len(torn))
            self._meta_sizes[image.checkpoint_id] = 0
            self.total_compressed_bytes += len(torn)
            raise
        if charge_time:
            if self.compress:
                self.clock.advance_us(self.costs.compress_us(len(raw)))
            self.clock.advance_us(
                self.costs.disk_write_us(written, sequential=True)
            )
        self._blobs[image.checkpoint_id] = frame
        self._sizes[image.checkpoint_id] = (len(raw), len(blob))
        self._meta_sizes[image.checkpoint_id] = image.metadata_bytes
        self.total_uncompressed_bytes += len(raw)
        self.total_compressed_bytes += len(blob)
        self.write_count += 1
        # A freshly written image sits in the page cache.
        self._cached.add(image.checkpoint_id)
        return written

    # ------------------------------------------------------------------ #
    # Frame integrity

    def blob_ok(self, image_id):
        """Validate one stored frame's trailer; ``(ok, reason)``."""
        frame = self._blobs.get(image_id)
        if frame is None:
            return False, "missing"
        if len(frame) <= _TRAILER.size:
            return False, "torn: frame shorter than trailer"
        magic, _raw_len, blob_len, crc = _TRAILER.unpack(
            frame[-_TRAILER.size:])
        if magic != TRAILER_MAGIC:
            return False, "torn: trailer magic missing"
        blob = frame[:-_TRAILER.size]
        if blob_len != len(blob):
            return False, "torn: payload length mismatch"
        if crc != zlib.crc32(blob):
            return False, "corrupt: payload checksum mismatch"
        return True, None

    # ------------------------------------------------------------------ #
    # Read path

    def load(self, image_id, cached=None, metadata_only=False):
        """Read and decode an image.

        ``cached=None`` uses the storage's own cache state; True/False
        force the hot/cold path (benchmarks force both).

        ``metadata_only=True`` charges only for the image's metadata record
        (process/region/page-location tables) — the demand-paged revive
        path, which reads page payloads lazily later.  The returned object
        still carries the pages (the host keeps images whole); only the
        *accounted* I/O differs.

        A torn or corrupt frame raises :class:`CheckpointError` (after
        charging for the attempted read — the seek still happened).
        """
        frame = self._blobs.get(image_id)
        if frame is None:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        ok, reason = self.blob_ok(image_id)
        if not ok:
            self.clock.advance_us(
                self.costs.disk_read_us(len(frame), sequential=False))
            self.read_count += 1
            raise CheckpointError(
                "checkpoint %d unreadable (%s)" % (image_id, reason))
        blob = frame[:-_TRAILER.size]
        uncompressed, compressed = self._sizes[image_id]
        read_bytes = compressed if self.compress else uncompressed
        if metadata_only:
            read_bytes = min(read_bytes, self._meta_sizes[image_id])
        if cached is None:
            cached = image_id in self._cached
        if cached:
            self.clock.advance_us(read_bytes * self.costs.memcpy_us_per_byte)
        else:
            self.clock.advance_us(
                self.costs.disk_read_us(read_bytes, sequential=False)
            )
            if not metadata_only:
                self._cached.add(image_id)
        self.read_count += 1
        return CheckpointImage.deserialize(zlib.decompress(blob))

    def is_cached(self, image_id):
        return image_id in self._cached

    def evict_all(self):
        """Drop the page cache (forces the Figure 7 uncached path)."""
        self._cached.clear()

    def stored_ids(self):
        return sorted(self._blobs)

    def size_of(self, image_id):
        """``(uncompressed, compressed)`` byte sizes of one image."""
        if image_id not in self._sizes:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        return self._sizes[image_id]

    def delete(self, image_id):
        """Remove a stored image (checkpoint pruning); returns the bytes
        freed (as accounted)."""
        if image_id not in self._blobs:
            raise CheckpointError("no stored checkpoint %d" % image_id)
        uncompressed, compressed = self._sizes.pop(image_id)
        del self._blobs[image_id]
        del self._meta_sizes[image_id]
        self._cached.discard(image_id)
        freed = compressed if self.compress else uncompressed
        self.total_uncompressed_bytes -= uncompressed
        self.total_compressed_bytes -= compressed
        return freed

    # ------------------------------------------------------------------ #
    # Recovery

    def recover(self, fsstore=None):
        """Post-crash fsck of the image store.

        Phase 1 scans every frame's trailer and drops torn/corrupt
        blobs.  Phase 2 runs :func:`verify_chain` and deletes any image
        it flags (an image with dangling page locations or a broken
        parent chain cannot revive), iterating to a fixpoint because a
        deletion can strand dependants.  When ``fsstore`` is given, the
        file-system snapshot bindings of dropped checkpoints are
        unprotected so the LFS cleaner can reclaim them.

        Returns a report dict; ``verify_ok`` is True when the surviving
        store passes a final verification pass.
        """
        from repro.checkpoint.verify import verify_chain

        report = {
            "torn_dropped": [],
            "chain_dropped": [],
            "verify_ok": True,
            "remaining": 0,
        }

        def drop(image_id):
            del self._blobs[image_id]
            if image_id in self._sizes:
                uncompressed, compressed = self._sizes.pop(image_id)
                self.total_uncompressed_bytes -= uncompressed
                self.total_compressed_bytes -= compressed
            self._meta_sizes.pop(image_id, None)
            self._cached.discard(image_id)
            if fsstore is not None:
                try:
                    fsstore.fs.unprotect_checkpoint(image_id)
                except SnapshotError:
                    pass

        for image_id in self.stored_ids():
            ok, reason = self.blob_ok(image_id)
            if not ok:
                drop(image_id)
                report["torn_dropped"].append({"image_id": image_id,
                                               "reason": reason})

        # Chain repair to fixpoint: each pass can only delete, so the
        # loop is bounded by the number of stored images.
        verdict = verify_chain(self, fsstore)
        for _ in range(len(self._blobs)):
            flagged = sorted({issue.image_id for issue in verdict.issues
                              if issue.image_id in self._blobs})
            if not flagged:
                break
            for image_id in flagged:
                drop(image_id)
                report["chain_dropped"].append(image_id)
            verdict = verify_chain(self, fsstore)
        report["verify_ok"] = verdict.ok
        report["remaining"] = len(self._blobs)
        return report

    def __contains__(self, image_id):
        return image_id in self._blobs

    def __len__(self):
        return len(self._blobs)
