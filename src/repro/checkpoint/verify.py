"""Record integrity verification (fsck for the checkpoint chain).

A personal recorder accumulates months of incremental chains, file system
snapshots and display records; silent corruption anywhere breaks *Take me
back* long after the damage happened.  :func:`verify_chain` audits the
whole store the way a file system checker would:

* every stored image deserializes and carries a coherent header;
* incremental images' parent pointers are older and acyclic (absent
  parents are fine — pruning removes images nobody's pages need);
* every page-location entry resolves: the owning image exists and actually
  contains that page's data;
* content-addressed manifests resolve: every digest an image references
  is present in the page store and its payload hashes back to the digest;
* full images are self-contained (every location points at themselves);
* saved pages belong to a region the image declares, within bounds;
* every image's checkpoint counter has a file system snapshot binding, and
  the bound snapshot is not newer than the file system's present.

Issues are returned, not raised, so callers can report all of them at
once (and tests can assert on specific codes).
"""

from dataclasses import dataclass

from repro.common.costs import PAGE_SIZE
from repro.common.errors import SnapshotError
from repro.checkpoint.image import page_digest


@dataclass(frozen=True)
class Issue:
    """One verification finding."""

    code: str
    image_id: int
    detail: str

    def __str__(self):
        return "[%s] image %d: %s" % (self.code, self.image_id, self.detail)


@dataclass
class VerifyReport:
    """Outcome of a chain verification pass."""

    images_checked: int
    pages_checked: int
    issues: list

    @property
    def ok(self):
        return not self.issues

    def issues_with(self, code):
        return [issue for issue in self.issues if issue.code == code]


def verify_chain(storage, fsstore=None):
    """Audit every stored checkpoint image; returns a :class:`VerifyReport`.

    ``fsstore`` (optional) additionally checks the checkpoint-to-snapshot
    bindings of section 5.1.1.
    """
    issues = []
    images = {}
    for image_id in storage.stored_ids():
        try:
            images[image_id] = storage.load(image_id, cached=True)
        except Exception as exc:  # corrupt blob
            issues.append(Issue("undecodable", image_id, str(exc)))

    pages_checked = 0
    for image_id, image in sorted(images.items()):
        if image.checkpoint_id != image_id:
            issues.append(Issue(
                "id-mismatch", image_id,
                "header says %d" % image.checkpoint_id,
            ))

        # Parent chain: exists, older, acyclic, ends at a full image.
        if image.full:
            if image.parent_id is not None:
                issues.append(Issue(
                    "full-with-parent", image_id,
                    "full image claims parent %d" % image.parent_id,
                ))
        else:
            seen = {image_id}
            cursor = image
            while not cursor.full:
                parent_id = cursor.parent_id
                if parent_id is None:
                    issues.append(Issue(
                        "broken-chain", image_id,
                        "incremental image without a parent",
                    ))
                    break
                if parent_id in seen:
                    issues.append(Issue(
                        "chain-cycle", image_id,
                        "cycle through image %d" % parent_id,
                    ))
                    break
                if parent_id not in images:
                    # Pruning removes parents whose pages nobody needs;
                    # revivability is guaranteed by the page-location
                    # checks below, so a missing parent alone is fine.
                    break
                if parent_id >= cursor.checkpoint_id:
                    issues.append(Issue(
                        "parent-not-older", image_id,
                        "parent %d >= child %d" % (parent_id,
                                                   cursor.checkpoint_id),
                    ))
                    break
                seen.add(parent_id)
                cursor = images[parent_id]

        # Region bounds for saved pages.
        regions = {
            (vpid, record["start"]): record
            for vpid, records in image.regions.items()
            for record in records
        }
        for (vpid, region_start, page_index), content in image.pages.items():
            pages_checked += 1
            record = regions.get((vpid, region_start))
            if record is None:
                issues.append(Issue(
                    "orphan-page", image_id,
                    "page for unknown region vpid=%d start=%#x"
                    % (vpid, region_start),
                ))
                continue
            if page_index >= record["npages"]:
                issues.append(Issue(
                    "page-out-of-bounds", image_id,
                    "page %d beyond region of %d pages"
                    % (page_index, record["npages"]),
                ))
            if len(content) > PAGE_SIZE:
                issues.append(Issue(
                    "oversized-page", image_id,
                    "page payload of %d bytes" % len(content),
                ))

        # Page locations must resolve to stored pages.
        for key, owner_id in image.page_locations.items():
            if image.full and owner_id != image_id:
                issues.append(Issue(
                    "full-not-self-contained", image_id,
                    "full image points %r at image %d" % (key, owner_id),
                ))
                continue
            owner = images.get(owner_id)
            if owner is None:
                issues.append(Issue(
                    "dangling-location", image_id,
                    "page %r owned by missing image %d" % (key, owner_id),
                ))
            elif key not in owner.pages:
                issues.append(Issue(
                    "unresolvable-page", image_id,
                    "page %r absent from image %d" % (key, owner_id),
                ))

        # Content-addressed manifests must resolve into the page store.
        manifest_of = getattr(storage, "manifest_digests", None)
        cas_page = getattr(storage, "cas_page", None)
        if manifest_of is not None and cas_page is not None:
            for digest in manifest_of(image_id):
                payload = cas_page(digest)
                if payload is None:
                    issues.append(Issue(
                        "dangling-digest", image_id,
                        "manifest references digest %s absent from the "
                        "page store" % digest.hex()[:12],
                    ))
                elif page_digest(payload) != digest:
                    issues.append(Issue(
                        "page-digest-mismatch", image_id,
                        "page store payload for %s fails its content "
                        "hash" % digest.hex()[:12],
                    ))

        # File system binding (section 5.1.1).
        if fsstore is not None:
            try:
                txn = fsstore.fs.txn_for_checkpoint(image_id)
            except SnapshotError:
                issues.append(Issue(
                    "missing-fs-binding", image_id,
                    "no file system snapshot bound to this checkpoint",
                ))
            else:
                if image.fs_txn is not None and txn != image.fs_txn:
                    issues.append(Issue(
                        "fs-binding-mismatch", image_id,
                        "image says txn %r, log says %r"
                        % (image.fs_txn, txn),
                    ))
                if txn > fsstore.fs.current_txn:
                    issues.append(Issue(
                        "fs-binding-future", image_id,
                        "bound txn %d is in the future" % txn,
                    ))

    # Writeback-pipeline tripwire: in synchronous mode every manifest
    # commit force-flushes the touched shards, so the append queues must
    # be empty whenever verification runs.  Async (fleet) storage keeps
    # a live backlog by design — queued pages are readable and owned, so
    # a non-empty queue is not an integrity issue there.
    unflushed = getattr(storage, "unflushed_digests", None)
    if unflushed is not None and not getattr(storage, "writeback_async",
                                             False):
        stale = unflushed()
        if stale:
            issues.append(Issue(
                "unflushed-pages", -1,
                "%d page(s) stuck in the sync-mode append queue "
                "(e.g. %s)" % (len(stale),
                               sorted(stale)[0].hex()[:12]),
            ))

    return VerifyReport(
        images_checked=len(images),
        pages_checked=pages_checked,
        issues=issues,
    )
