"""Checkpoint image format.

An image captures everything section 5.2 lists for revive: per-process run
state, program name, scheduling parameters, credentials, pending and blocked
signals, CPU registers, FPU state, ptrace information, file system
namespace, open files, signal handling information, and virtual memory.

Incremental images (section 5.1.2) save only the pages modified since the
previous checkpoint.  To make any image in the chain revivable on its own,
each image also carries a **page-location directory**: for every page
resident at checkpoint time, the id of the image that holds its latest
saved copy ("when the restoration process encounters a memory region that
is contained in another file, as marked by its list of saved memory
regions, it opens the appropriate file and retrieves the necessary pages").

Serialization is TLV and comes in two on-disk formats:

* **v2 (whole blob)** — a JSON metadata record followed by one
  ``TAG_PAGE`` record per saved page carrying the page payload inline.
  Page payloads dominate, as the paper observes ("the memory state of the
  processes dominates the checkpoint image").
* **v3 (manifest)** — the same metadata record followed by one
  ``TAG_PAGE_REF`` record per saved page carrying only the SHA-1 digest
  of the page content.  Payloads live in the storage layer's
  content-addressed page store, shared across every image that saved an
  identical page; the stream header's format version distinguishes the
  two so v2 blobs remain readable.
"""

import hashlib
import json
import struct

from repro.common.errors import CheckpointError
from repro.common.serial import (
    FORMAT_VERSION,
    FORMAT_VERSION_MANIFEST,
    RecordReader,
    RecordWriter,
)

STREAM_KIND_CHECKPOINT = 0xC4E7

TAG_METADATA = 1
TAG_PAGE = 2
TAG_PAGE_REF = 3

_PAGE_HEADER = struct.Struct("<IQI")  # vpid, region start, page index

#: SHA-1 digest length: the content address of one page.
DIGEST_SIZE = hashlib.sha1().digest_size


def page_digest(content):
    """The content address of one page payload (raw SHA-1 digest)."""
    return hashlib.sha1(bytes(content)).digest()


def _page_key_str(key):
    vpid, region_start, page_index = key
    return "%d:%d:%d" % (vpid, region_start, page_index)


def _page_key_from_str(text):
    vpid, region_start, page_index = text.split(":")
    return (int(vpid), int(region_start), int(page_index))


class CheckpointImage:
    """One checkpoint of a container.

    Attributes
    ----------
    checkpoint_id:
        The monotonically increasing checkpoint counter; also recorded in
        the file system log (section 5.1.1).
    parent_id:
        Previous checkpoint in the incremental chain (None for the first).
    full:
        True when every resident page is saved in this image.
    fs_txn:
        The file system snapshot transaction bound to this checkpoint.
    processes:
        Per-process state records (dicts; see ``Process`` snapshots).
    regions:
        ``{vpid: [region metadata, ...]}``.
    pages:
        ``{(vpid, region_start, page_index): bytes}`` saved in THIS image.
    page_locations:
        ``{(vpid, region_start, page_index): image_id}`` for every page
        resident at checkpoint time.
    page_digests:
        ``{(vpid, region_start, page_index): sha1 digest}`` manifest for
        the pages saved in this image.  Populated by a v3 deserialize (the
        payloads then live in the content-addressed page store) or by
        :meth:`serialize` when writing format 3; empty for v2 round trips.
    """

    def __init__(self, checkpoint_id, timestamp_us, container_name,
                 parent_id=None, full=True, fs_txn=None):
        self.checkpoint_id = checkpoint_id
        self.timestamp_us = timestamp_us
        self.container_name = container_name
        self.parent_id = parent_id
        self.full = full
        self.fs_txn = fs_txn
        self.processes = []
        self.regions = {}
        self.pages = {}
        self.page_locations = {}
        self.page_digests = {}
        self.relinked_files = []  # [(vpid, fd, relink path), ...]

    # ------------------------------------------------------------------ #
    # Size accounting

    @property
    def saved_page_count(self):
        return len(self.pages)

    @property
    def page_bytes(self):
        return sum(len(content) for content in self.pages.values())

    @property
    def metadata_bytes(self):
        return len(self._metadata_json())

    @property
    def nbytes(self):
        """Uncompressed serialized size (approximate until serialized)."""
        return self.metadata_bytes + self.page_bytes + 16 * len(self.pages)

    # ------------------------------------------------------------------ #
    # Serialization

    def _metadata_json(self):
        meta = {
            "checkpoint_id": self.checkpoint_id,
            "timestamp_us": self.timestamp_us,
            "container_name": self.container_name,
            "parent_id": self.parent_id,
            "full": self.full,
            "fs_txn": self.fs_txn,
            "processes": self.processes,
            "regions": {str(vpid): regs for vpid, regs in self.regions.items()},
            "page_locations": {
                _page_key_str(key): image_id
                for key, image_id in self.page_locations.items()
            },
            "relinked_files": self.relinked_files,
        }
        return json.dumps(meta, separators=(",", ":")).encode("utf-8")

    def manifest(self):
        """``{key: digest}`` for every page saved in this image.

        Digests come from :attr:`page_digests` when present (a v3
        deserialize carries no payloads) and are computed from
        :attr:`pages` otherwise, so the manifest is always available no
        matter which format the image came from.
        """
        out = {}
        for key in set(self.pages) | set(self.page_digests):
            digest = self.page_digests.get(key)
            if digest is None:
                digest = page_digest(self.pages[key])
            out[key] = digest
        return out

    def serialize(self, format=FORMAT_VERSION):
        """Encode the image as a TLV byte stream.

        ``format=2`` (the default) writes the whole-blob layout with page
        payloads inline; ``format=3`` writes the manifest layout with one
        digest reference per page — the caller (the storage layer) owns
        placing the payloads in the content-addressed store.
        """
        if format == FORMAT_VERSION:
            writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT)
            writer.write(TAG_METADATA, self._metadata_json())
            for (vpid, region_start, page_index), content in sorted(
                    self.pages.items()):
                header = _PAGE_HEADER.pack(vpid, region_start, page_index)
                writer.write(TAG_PAGE, header + content)
            return writer.getvalue()
        if format != FORMAT_VERSION_MANIFEST:
            raise CheckpointError("unknown image format %r" % (format,))
        manifest = self.manifest()
        writer = RecordWriter(kind=STREAM_KIND_CHECKPOINT,
                              version=FORMAT_VERSION_MANIFEST)
        writer.write(TAG_METADATA, self._metadata_json())
        for (vpid, region_start, page_index), digest in sorted(
                manifest.items()):
            header = _PAGE_HEADER.pack(vpid, region_start, page_index)
            writer.write(TAG_PAGE_REF, header + digest)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, data):
        reader = RecordReader(data, expect_kind=STREAM_KIND_CHECKPOINT)
        records = iter(reader)
        try:
            tag, payload, _off = next(records)
        except StopIteration:
            raise CheckpointError("empty checkpoint image")
        if tag != TAG_METADATA:
            raise CheckpointError("checkpoint image must begin with metadata")
        meta = json.loads(payload.decode("utf-8"))
        image = cls(
            checkpoint_id=meta["checkpoint_id"],
            timestamp_us=meta["timestamp_us"],
            container_name=meta["container_name"],
            parent_id=meta["parent_id"],
            full=meta["full"],
            fs_txn=meta["fs_txn"],
        )
        image.processes = meta["processes"]
        image.regions = {int(vpid): regs for vpid, regs in meta["regions"].items()}
        image.page_locations = {
            _page_key_from_str(key): image_id
            for key, image_id in meta["page_locations"].items()
        }
        image.relinked_files = [tuple(item) for item in meta["relinked_files"]]
        manifest_stream = reader.version == FORMAT_VERSION_MANIFEST
        expected_tag = TAG_PAGE_REF if manifest_stream else TAG_PAGE
        for tag, payload, _off in records:
            if tag != expected_tag:
                raise CheckpointError("unexpected record tag %d in image" % tag)
            vpid, region_start, page_index = _PAGE_HEADER.unpack_from(payload)
            key = (vpid, region_start, page_index)
            body = payload[_PAGE_HEADER.size:]
            if manifest_stream:
                if len(body) != DIGEST_SIZE:
                    raise CheckpointError(
                        "malformed digest reference for page %r" % (key,))
                image.page_digests[key] = body
            else:
                image.pages[key] = body
        return image

    def __repr__(self):
        return (
            "CheckpointImage(id=%d, %s, processes=%d, pages=%d, parent=%r)"
            % (
                self.checkpoint_id,
                "full" if self.full else "incremental",
                len(self.processes),
                len(self.pages),
                self.parent_id,
            )
        )
