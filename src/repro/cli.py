"""Command-line interface.

Usage::

    python -m repro.cli scenarios
    python -m repro.cli run web [--units N] [--no-display] [--no-index]
                                [--no-checkpoints] [--policy] [--compress]
    python -m repro.cli stats web [--units N] [--faults SPEC]
    python -m repro.cli doctor web [--faults SPEC] [--seed N]
                                   [--post-mortem] [--journal-dir DIR]
    python -m repro.cli replay web [--units N] [--from-checkpoint ID]
                                   [--verify] [--faults SPEC] [--seed N]
                                   [--log-out FILE] [--report-out FILE]
    python -m repro.cli thin web [--units N] [--recent-window S]
                                 [--tiers SPEC] [--verify] [--crash]
    python -m repro.cli serve [--sessions N] [--seed S] [--units-scale F]
                              [--journal-dir DIR] [--trace-out FILE]
                              [--prom-out FILE] [--slo SPEC]
    python -m repro.cli fleet-stats [--sessions N] [--seed S] [...]
    python -m repro.cli top [--sessions N] [--frames K]
                            [--steps-per-frame M] [...]
    python -m repro.cli demo
    python -m repro.cli figures

``run`` executes one Table 1 scenario and prints a report: simulated
duration, checkpoint latency summary, storage growth decomposition, and a
sample search.  ``stats`` runs a scenario and prints its telemetry
snapshot (counters, histogram summaries, recent span trees).  ``demo``
runs a 30-second guided record/search/revive tour.

``replay`` records one scenario run with the deterministic-replay event
log enabled, then re-executes it in lockstep and verifies every logged
nondeterministic event — framebuffer SHA-1s and checkpoint fingerprints
included.  With ``--faults`` the recorded run crashes/recovers first and
the surviving log prefix must still re-derive bit-identically (the
replay-divergence oracle); ``--from-checkpoint`` starts verification at
that checkpoint's anchor.  Exit status 1 on divergence.

``doctor --post-mortem`` replays the flight-recorder journal after the
crash-inject/recover cycle and prints the last-K-events timeline; ``top``
is the live fleet dashboard (per-member downtime p95, dedup ratio,
scheduler queue depth, quota/throttle state, SLO standings), refreshing
on the service clock.  ``--trace-out`` writes a Chrome trace-event JSON
(load it in Perfetto / ``chrome://tracing``); ``--prom-out`` writes the
fleet rollup in the Prometheus text exposition format.

``--json`` (accepted globally or after any subcommand) switches ``run``
and ``stats`` to machine-readable JSON on stdout.
"""

import argparse
import json
import sys

from repro.common.units import format_bytes, format_duration_us, format_rate
from repro.desktop.dejaview import RecordingConfig
from repro.workloads import SCENARIOS, get_workload
from repro.workloads import scenarios as _scenarios  # noqa: F401 (registry)

FIGURES = {
    "table1": "benchmarks/bench_table1_scenarios.py",
    "fig2": "benchmarks/bench_fig2_overhead.py",
    "fig3": "benchmarks/bench_fig3_checkpoint_latency.py",
    "fig4": "benchmarks/bench_fig4_storage_growth.py",
    "fig5": "benchmarks/bench_fig5_browse_search.py",
    "fig6": "benchmarks/bench_fig6_playback_speedup.py",
    "fig7": "benchmarks/bench_fig7_revive_latency.py",
    "policy": "benchmarks/bench_policy_effectiveness.py",
    "ablation": "benchmarks/bench_ablation_optimizations.py",
    "screencast": "benchmarks/bench_baseline_screencast.py",
}


def _add_scenario_args(sub):
    """Scenario selection shared by ``run`` and ``stats``: a positional
    name or an equivalent ``--scenario`` option."""
    sub.add_argument("scenario", nargs="?", default=None,
                     help="scenario name (see 'scenarios')")
    sub.add_argument("--scenario", dest="scenario_opt", default=None,
                     metavar="NAME",
                     help="scenario name (alternative to the positional)")
    sub.add_argument("--units", type=int, default=None,
                     help="work units (default: the scenario's standard run)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DejaView reproduction (SOSP 2007) command line",
    )
    # Global: accepted before the subcommand; the per-subcommand copies
    # below use SUPPRESS so "repro run web --json" works too without the
    # subparser default overwriting this one.
    parser.add_argument("--json", action="store_true", default=False,
                        help="emit machine-readable JSON (run / stats)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list the Table 1 workload scenarios")

    run = sub.add_parser("run", help="run one scenario and print a report")
    _add_scenario_args(run)
    run.add_argument("--no-display", action="store_true",
                     help="disable display recording")
    run.add_argument("--no-index", action="store_true",
                     help="disable text indexing")
    run.add_argument("--no-checkpoints", action="store_true",
                     help="disable checkpointing")
    run.add_argument("--policy", action="store_true",
                     help="checkpoint under the section 5.1.3 policy "
                          "instead of fixed 1 Hz")
    run.add_argument("--compress", action="store_true",
                     help="account compressed checkpoint storage")

    stats = sub.add_parser(
        "stats", help="run one scenario and print its telemetry snapshot")
    _add_scenario_args(stats)
    stats.add_argument("--spans", type=int, default=4,
                       help="recent root spans to include (default 4)")
    stats.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="run under a fault plan (io-mode rules recommended; the "
             "per-site hit/fired table joins the output)")
    stats.add_argument("--seed", type=int, default=0,
                       help="RNG seed for probabilistic fault rules")

    doctor = sub.add_parser(
        "doctor",
        help="run a scenario under fault injection, then recover and "
             "verify the record (fsck for the whole recording)")
    _add_scenario_args(doctor)
    doctor.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault plan, e.g. 'lfs.append.mid_block:after=3' or "
             "'recorder.log.append:mode=io,p=0.2,repeat;"
             "storage.store.pre_commit:after=2' "
             "(default: no faults, recovery still runs)")
    doctor.add_argument("--seed", type=int, default=0,
                        help="RNG seed for probabilistic fault rules")
    doctor.add_argument("--list-failpoints", action="store_true",
                        help="print the registered failpoint catalog and exit")
    doctor.add_argument(
        "--post-mortem", action="store_true",
        help="journal the run in the flight recorder and replay the "
             "last-K-events timeline after recovery")
    doctor.add_argument("--journal-dir", default=None, metavar="DIR",
                        help="flight-recorder journal directory (default: "
                             "in-memory ring; a directory survives kill -9)")
    doctor.add_argument("--last", type=int, default=40,
                        help="post-mortem window: events to replay "
                             "(default 40)")
    doctor.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the journal's span stream as Chrome "
                             "trace-event JSON (Perfetto-loadable)")

    replay = sub.add_parser(
        "replay",
        help="record a scenario, then re-execute it in lockstep and "
             "verify bit-identical framebuffer/checkpoint fingerprints "
             "(the deterministic-replay divergence oracle)")
    _add_scenario_args(replay)
    replay.add_argument("--from-checkpoint", type=int, default=None,
                        metavar="ID",
                        help="start verification at this checkpoint's "
                             "anchor (fast-forwards the re-derivation)")
    replay.add_argument("--verify", action="store_true",
                        help="strict mode: demand a complete replay "
                             "covering at least one checkpoint anchor, "
                             "not just the absence of divergence")
    replay.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="record under a fault plan (see doctor --faults), recover, "
             "then replay the surviving log prefix with the same plan "
             "re-armed")
    replay.add_argument("--seed", type=int, default=0,
                        help="RNG seed for probabilistic fault rules")
    replay.add_argument("--log-out", default=None, metavar="FILE",
                        help="write the recorded event-log bytes")
    replay.add_argument("--report-out", default=None, metavar="FILE",
                        help="write the replay report as JSON (the CI "
                             "divergence artifact)")

    thin = sub.add_parser(
        "thin",
        help="record a scenario with the replay log on, thin older "
             "checkpoints down to age-tiered anchors, and (optionally) "
             "replay-revive the tombstoned instants to verify "
             "bit-identical fingerprints")
    _add_scenario_args(thin)
    thin.add_argument("--recent-window", type=float, default=None,
                      metavar="SECONDS",
                      help="keep everything younger than this untouched "
                           "(default 5)")
    thin.add_argument("--tiers", default=None, metavar="SPEC",
                      help="age tiers as 'LIMIT:EVERY[,LIMIT:EVERY...]', "
                           "LIMIT in seconds or 'inf', e.g. '60:2,inf:4' "
                           "(the default)")
    thin.add_argument("--verify", action="store_true",
                      help="take_me_back to every thinned instant and "
                           "demand a fingerprint-verified replay-revive")
    thin.add_argument("--crash", action="store_true",
                      help="inject a crash mid-thin (thin.drop_refs), "
                           "recover, and re-run the pass — the "
                           "idempotence / fsck demo")
    thin.add_argument("--seed", type=int, default=0,
                      help="RNG seed for the fault plan (--crash)")

    def _add_fleet_args(command):
        command.add_argument("--sessions", type=int, default=4,
                             help="number of sessions to admit (default 4)")
        command.add_argument("--seed", type=int, default=0,
                             help="scheduler interleaving seed (default 0)")
        command.add_argument("--units-scale", type=float, default=1.0,
                             help="scale every session's unit count")
        command.add_argument("--shards", type=int, default=4,
                             help="consistent-hash shard count for the "
                                  "shared page store (default 4); group "
                                  "commits batch per shard")
        command.add_argument("--journal-dir", default=None, metavar="DIR",
                             help="flight-recorder journal directory "
                                  "(default: in-memory ring)")
        command.add_argument("--trace-out", default=None, metavar="FILE",
                             help="write the journal's span stream as "
                                  "Chrome trace-event JSON")
        command.add_argument("--prom-out", default=None, metavar="FILE",
                             help="write the fleet rollup in Prometheus "
                                  "text exposition format")
        command.add_argument("--slo", default=None, metavar="SPEC",
                             help="SLO watchdog rules, ';'-separated, e.g. "
                                  "'downtime_p95<=25000;dedup_ratio>=0.15' "
                                  "(default: the stock rules)")
        command.add_argument("--thin", action="store_true",
                             help="thin member checkpoints on the rollup "
                                  "cadence under the default age-tiered "
                                  "policy (fork points stay pinned)")

    serve = sub.add_parser(
        "serve",
        help="record N sessions at once under the deterministic fleet "
             "scheduler with a shared checkpoint page store")
    _add_fleet_args(serve)

    fleet_stats = sub.add_parser(
        "fleet-stats",
        help="run a fleet and print its rolled-up telemetry snapshot")
    _add_fleet_args(fleet_stats)

    top = sub.add_parser(
        "top",
        help="live fleet dashboard: run the fleet frame by frame and "
             "render per-member state, downtime p95, dedup ratio, queue "
             "depth, and SLO standings")
    _add_fleet_args(top)
    top.add_argument("--frames", type=int, default=8,
                     help="dashboard frames to render (default 8)")
    top.add_argument("--steps-per-frame", type=int, default=16,
                     help="scheduler steps between frames (default 16)")

    storm = sub.add_parser(
        "revive-storm",
        help="fork N branches from one checkpoint of a recorded parent "
             "and run them as fleet members (section 5.2 branchable "
             "revive)")
    storm.add_argument("--branches", type=int, default=16,
                       help="simultaneous branches to fork (default 16)")
    storm.add_argument("--scenario", default="web",
                       help="parent scenario to record (default web)")
    storm.add_argument("--seed", type=int, default=0,
                       help="scheduler interleaving seed (default 0)")
    storm.add_argument("--parent-units", type=int, default=24,
                       help="parent work units before the fork point")
    storm.add_argument("--branch-units", type=int, default=4,
                       help="work units per branch after the fork")
    storm.add_argument("--crash-branch", type=int, default=None,
                       metavar="N",
                       help="kill branch N mid-fork (revive.branch.refs) "
                            "and recover it — storm resilience demo")
    storm.add_argument("--shards", type=int, default=4,
                       help="shared page store shard count (default 4)")

    sub.add_parser("demo", help="record/search/revive guided tour")
    sub.add_parser("figures", help="map of paper figures to bench files")
    for command in sub.choices.values():
        command.add_argument("--json", action="store_true",
                             default=argparse.SUPPRESS,
                             help=argparse.SUPPRESS)
    return parser


def _resolve_scenario(args):
    name = args.scenario_opt or args.scenario
    if name is None:
        print("error: a scenario is required (positional or --scenario)",
              file=sys.stderr)
        raise SystemExit(2)
    return name


def _run_scenario(args):
    """Build the recording config and run the workload (run / stats)."""
    name = _resolve_scenario(args)
    workload = get_workload(name)
    config = RecordingConfig(
        record_display=not getattr(args, "no_display", False),
        record_index=not getattr(args, "no_index", False),
        record_checkpoints=not getattr(args, "no_checkpoints", False),
        use_policy=getattr(args, "policy", False),
        compress_checkpoints=getattr(args, "compress", False),
    )
    if name == "desktop" and config.record_checkpoints:
        config.use_policy = True
    if getattr(args, "faults", None):
        # Under a fault plan the run may die mid-unit (crash) or lose a
        # unit to a transient io fault; keep the partial run — its
        # telemetry and per-site hit counters are the point.
        from repro.common.faults import FaultPlan, InjectedCrash

        config.fault_plan = FaultPlan.parse(
            args.faults, seed=getattr(args, "seed", 0))
        run, steps = workload.start(recording=config, units=args.units)
        try:
            for _ in steps:
                pass
        except (InjectedCrash, IOError):
            pass
        return name, run
    return name, workload.run(recording=config, units=args.units)


def cmd_scenarios(_args, out):
    get_workload("web")  # populate registry
    print("Table 1 scenarios:", file=out)
    for name in sorted(SCENARIOS):
        workload = SCENARIOS[name]()
        print("  %-8s %s (default %d units)" % (
            name, workload.description, workload.default_units), file=out)
    return 0


def _sample_search(dv):
    """Exercise the query path so telemetry reports index latency and the
    query-planner counters: one full-history keyword search, one windowed
    search over the recording's second half (populates
    ``index.buckets_skipped`` / ``index.postings_pruned``), and a repeat
    of the windowed query (populates ``index.interval_cache_hits``).
    Returns a summary dict or None when there is no indexed text."""
    if dv.database is None or not dv.database.vocabulary():
        return None
    from repro.index.query import Query

    database = dv.database
    vocabulary = database.vocabulary()
    word = vocabulary[len(vocabulary) // 2]
    engine = dv.search_engine()
    results = engine.search(Query.keywords(word), render=False, limit=3)
    sample = {"word": word, "hits": len(results)}
    end_us = database.clock.now_us
    if end_us > 1:
        windowed_query = Query.keywords(word, start_us=end_us // 2,
                                        end_us=end_us)
        windowed = engine.search(windowed_query, render=False, limit=3)
        engine.search(windowed_query, render=False, limit=3)  # cache hit
        sample["windowed_hits"] = len(windowed)
    return sample


def cmd_run(args, out):
    if args.json:
        name, run = _run_scenario(args)
        dv = run.dejaview
        sample = _sample_search(dv)
        report = {
            "scenario": name,
            "simulated_seconds": run.duration_seconds,
            "checkpoints": dv.checkpoint_count,
            "storage_growth_rates": run.storage_growth_rates(),
            "storage_report": dv.storage_report(),
            "telemetry": dv.telemetry_snapshot(),
        }
        if sample is not None:
            report["sample_search"] = sample
        json.dump(report, out, indent=2, default=str)
        print(file=out)
        return 0
    name = _resolve_scenario(args)
    units = args.units or get_workload(name).default_units
    print("running %s (%d units)..." % (name, units), file=out)
    _name, run = _run_scenario(args)
    dv = run.dejaview
    print("simulated duration: %.2f s" % run.duration_seconds, file=out)
    if dv.engine is not None and dv.engine.history:
        history = dv.engine.history
        avg_down = sum(r.downtime_us for r in history) / len(history)
        max_down = max(r.downtime_us for r in history)
        print("checkpoints: %d (avg downtime %s, max %s)" % (
            len(history), format_duration_us(avg_down),
            format_duration_us(max_down)), file=out)
    rates = run.storage_growth_rates()
    print("storage growth:", file=out)
    for stream in ("display", "index", "checkpoint",
                   "checkpoint_compressed", "fs"):
        print("  %-22s %s" % (stream, format_rate(rates[stream])), file=out)
    report = dv.storage_report()
    print("record footprint: display=%s index=%s checkpoints=%s" % (
        format_bytes(report["display"]),
        format_bytes(report["index"]),
        format_bytes(report["checkpoint_uncompressed"])), file=out)
    if report.get("pages_deduped"):
        print("page-store dedup: %d page(s), %s saved (%d orphan(s) "
              "reclaimed)" % (
                  report["pages_deduped"],
                  format_bytes(report["dedup_bytes_saved"]),
                  report["cas_orphans_reclaimed"]), file=out)
    sample = _sample_search(dv)
    if sample is not None:
        print("sample search %r: %d hit(s)" % (
            sample["word"], sample["hits"]), file=out)
    return 0


def _format_span(span_dict, out, depth=0):
    wall = span_dict.get("wall_ns")
    print("  %s%-28s virtual=%-12s wall=%s" % (
        "  " * depth,
        span_dict.get("name", "?"),
        format_duration_us(span_dict.get("virtual_us") or 0),
        "%.3f ms" % (wall / 1e6) if wall is not None else "?"), file=out)
    for child in span_dict.get("children", ()):
        _format_span(child, out, depth + 1)


def _print_fault_table(sites, out, indent="  "):
    """Per-site hit/fired lines, skipping never-hit sites."""
    hit = {site: counts for site, counts in sites.items()
           if counts["hits"] or counts["fired"]}
    if not hit:
        print(indent + "(no failpoints hit)", file=out)
        return
    for site, counts in sorted(hit.items()):
        print("%s%-32s hits=%-5d fired=%d" % (
            indent, site, counts["hits"], counts["fired"]), file=out)


def _print_shard_table(cas_stats, out, indent="  "):
    """Per-shard extent/backlog/flush table from a page store's
    ``stats()`` dict (``repro stats`` / ``serve`` / ``fleet-stats``)."""
    shards = cas_stats.get("shards")
    if not shards:
        return
    wb = cas_stats.get("writeback", {})
    print("%swriteback: %s, backlog %d page(s) / %s "
          "(highwater %s), %d flush batch(es) / %s flushed" % (
              indent, "async" if wb.get("async") else "sync",
              wb.get("backlog_pages", 0),
              format_bytes(wb.get("backlog_bytes", 0)),
              format_bytes(wb.get("backlog_highwater_bytes", 0)),
              wb.get("flush_batches", 0),
              format_bytes(wb.get("flush_bytes", 0))), file=out)
    print("%s%5s %7s %10s %10s %7s %7s %8s %9s" % (
        indent, "shard", "extents", "live", "dead", "queued",
        "flushes", "maxbatch", "highwater"), file=out)
    for row in shards:
        print("%s%5d %7d %10s %10s %7d %7d %8d %9s" % (
            indent, row["shard"], row["extents"],
            format_bytes(row["live_bytes"]),
            format_bytes(row["dead_bytes"]), row["queued_pages"],
            row["flushes"], row["max_batch_pages"],
            format_bytes(row["backlog_highwater_bytes"])), file=out)


def cmd_stats(args, out):
    name, run = _run_scenario(args)
    _sample_search(run.dejaview)  # exercise the query path for its metrics
    snapshot = run.dejaview.telemetry_snapshot(span_limit=args.spans)
    cas = getattr(run.dejaview.storage, "cas", None)
    cas_stats = cas.stats() if cas is not None else None
    if args.json:
        snapshot["scenario"] = name
        if cas_stats is not None:
            snapshot["page_store"] = cas_stats
        json.dump(snapshot, out, indent=2, default=str)
        print(file=out)
        return 0
    print("telemetry for %s scenario:" % name, file=out)
    print("counters:", file=out)
    for key, value in sorted(snapshot["counters"].items()):
        print("  %-36s %d" % (key, value), file=out)
    print("gauges:", file=out)
    for key, value in sorted(snapshot["gauges"].items()):
        print("  %-36s %s" % (key, value), file=out)
    print("histograms (count / p50 / p95 / max):", file=out)
    for key, summary in sorted(snapshot["histograms"].items()):
        if not summary["count"]:
            continue
        print("  %-36s %d / %.0f / %.0f / %.0f" % (
            key, summary["count"], summary["p50"], summary["p95"],
            summary["max"]), file=out)
    if cas_stats is not None:
        print("page store (%d shard(s)):" % cas_stats["shard_count"],
              file=out)
        _print_shard_table(cas_stats, out)
    if "faults" in snapshot:
        print("failpoints (hits / fired):", file=out)
        _print_fault_table(snapshot["faults"], out)
    bus = snapshot["event_bus"]
    print("event bus: published=%d delivered=%d errors=%d" % (
        bus["published"], bus["delivered"], bus["errors"]), file=out)
    spans = snapshot["spans"]
    print("spans: %d total, %d retained; most recent roots:" % (
        spans["span_count"], spans["retained_roots"]), file=out)
    for root in spans["recent_roots"]:
        _format_span(root, out)
    return 0


def cmd_doctor(args, out):
    """Run a scenario under fault injection, then recover and verify:
    the whole-record fsck.  Exit status 1 when the surviving checkpoint
    chain fails verification."""
    from repro.checkpoint.verify import verify_chain
    from repro.common.faults import FAILPOINTS, FaultPlan, InjectedCrash
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession

    if args.list_failpoints:
        if args.json:
            json.dump({"failpoints": FAILPOINTS}, out, indent=2)
            print(file=out)
            return 0
        print("registered failpoints:", file=out)
        for site in sorted(FAILPOINTS):
            print("  %-32s %s" % (site, FAILPOINTS[site]), file=out)
        return 0

    name = _resolve_scenario(args)
    workload = get_workload(name)
    plan = (FaultPlan.parse(args.faults, seed=args.seed)
            if args.faults else FaultPlan(seed=args.seed))
    flightrec = None
    if args.post_mortem or args.journal_dir is not None \
            or args.trace_out is not None:
        from repro.common.flightrec import FlightRecorder

        flightrec = FlightRecorder(directory=args.journal_dir)
    config = RecordingConfig(fault_plan=plan, flightrec=flightrec)
    # Build the session and recorder up front (instead of letting the
    # workload build them) so the references survive an injected crash.
    session = DesktopSession()
    dv = DejaView(session, config)
    crash = None
    try:
        workload.run(units=args.units, session=session, dejaview=dv)
    except InjectedCrash as exc:
        crash = exc
    except IOError as exc:
        # A transient injected fault escaped the workload driver; real
        # applications would retry.  Recovery still runs.
        crash = exc

    recovery = dv.recover()
    verdict = verify_chain(dv.storage, session.fsstore)
    playback_ok = None
    if dv.recorder is not None:
        record = dv.display_record()
        if len(record.timeline):
            engine = dv.playback_engine()
            engine.play(record.start_us, record.end_us, fastest=True)
            playback_ok = True
    search_hits = None
    if dv.database is not None and dv.database.vocabulary():
        from repro.index.query import Query

        vocabulary = dv.database.vocabulary()
        word = vocabulary[len(vocabulary) // 2]
        search_hits = len(dv.search(Query.keywords(word), render=False))

    replay = None
    if flightrec is not None:
        from repro.common.flightrec import replay_journal

        if args.journal_dir is not None:
            # Post-crash entry point: replay the surviving on-disk bytes,
            # not the live writer's state.
            replay = replay_journal(args.journal_dir)
        else:
            replay = flightrec.replay()
        if args.trace_out is not None:
            from repro.common.export import chrome_trace_json

            with open(args.trace_out, "w") as fh:
                fh.write(chrome_trace_json(replay.records))

    summary = {
        "scenario": name,
        "faults": args.faults,
        "crash": str(crash) if crash is not None else None,
        "fault_hits": plan.hit_snapshot(),
        "recovery": recovery,
        "chain_verified": verdict.ok,
        "issues": [str(issue) for issue in verdict.issues],
        "checkpoints_surviving": len(dv.storage),
        "playback_ok": playback_ok,
        "search_hits": search_hits,
    }
    if replay is not None:
        summary["post_mortem"] = replay.to_dict(last=args.last)
    if args.json:
        json.dump(summary, out, indent=2, default=str)
        print(file=out)
        return 0 if verdict.ok else 1

    print("doctor: %s scenario, faults=%s" % (name, args.faults or "none"),
          file=out)
    if crash is not None:
        print("injected: %s" % crash, file=out)
    fired = {site: counts for site, counts in plan.hit_snapshot().items()
             if counts["hits"]}
    for site, counts in sorted(fired.items()):
        print("  %-32s hits=%-5d fired=%d" % (
            site, counts["hits"], counts["fired"]), file=out)
    storage_report = recovery.get("storage", {})
    print("recovery: torn=%d chain-dropped=%d surviving=%d" % (
        len(storage_report.get("torn_dropped", ())),
        len(storage_report.get("chain_dropped", ())),
        len(dv.storage)), file=out)
    if "display" in recovery:
        display = recovery["display"]
        print("display: dropped %d log + %d screenshot bytes, "
              "%d timeline entries" % (
                  display["log_bytes_dropped"],
                  display["screenshot_bytes_dropped"],
                  display["timeline_entries_dropped"]), file=out)
    if "index" in recovery:
        print("index: dropped %d uncommitted, rebuilt %d postings" % (
            len(recovery["index"]["uncommitted_dropped"]),
            recovery["index"]["postings_rebuilt"]), file=out)
    print("chain verify: %s" % ("ok" if verdict.ok else "FAILED"), file=out)
    for issue in verdict.issues:
        print("  %s" % issue, file=out)
    if playback_ok:
        print("playback: ok (end to end)", file=out)
    if search_hits is not None:
        print("search: %d hit(s), no errors" % search_hits, file=out)
    if replay is not None:
        from repro.common.flightrec import format_post_mortem

        for line in format_post_mortem(replay, last=args.last):
            print(line, file=out)
        if args.trace_out is not None:
            print("wrote %s" % args.trace_out, file=out)
    return 0 if verdict.ok else 1


def cmd_replay(args, out):
    """Record one scenario run with the replay event log on, re-execute
    it in lockstep, and verify every logged nondeterministic event.
    Exit status 1 on divergence (or, under ``--verify``, on anything
    short of a complete anchor-covering replay)."""
    from repro.common.faults import FaultPlan
    from repro.replay import anchor_ids, record_scenario, replay

    name = _resolve_scenario(args)
    plan = FaultPlan.parse(args.faults, seed=args.seed) \
        if args.faults else None
    recording = None
    if plan is not None:
        recording = get_workload(name).default_recording()
        recording.fault_plan = plan
    recorded = record_scenario(name, units=args.units, recording=recording)
    recovery = None
    if recorded.crashed is not None:
        # The reopen path runs on a fresh host; recover appends the
        # replay barrier so verification covers the pre-crash prefix.
        if plan is not None:
            plan.disarm()
        recovery = recorded.dejaview.recover()
    data = recorded.tap.getvalue()
    if args.log_out:
        with open(args.log_out, "wb") as fh:
            fh.write(data)
    fresh = plan.fresh_copy() if plan is not None else None
    report = replay(data, from_checkpoint=args.from_checkpoint,
                    faults=fresh)
    verified = report.ok and (not args.verify or report.anchors_total >= 1)
    summary = {
        "scenario": name,
        "log_bytes": len(data),
        "anchors": anchor_ids(data),
        "crash": (str(recorded.crashed)
                  if recorded.crashed is not None else None),
        "recovery_ok": recovery["ok"] if recovery is not None else None,
        "verified": verified,
        "report": report.to_dict(),
    }
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(summary, fh, indent=2, default=str)
            fh.write("\n")
    if args.json:
        json.dump(summary, out, indent=2, default=str)
        print(file=out)
        return 0 if verified else 1
    print("replay: %s scenario, %d-byte event log, anchors %s" % (
        name, len(data), summary["anchors"]), file=out)
    if recorded.crashed is not None:
        print("injected: %s (recovery %s)" % (
            recorded.crashed, "ok" if recovery["ok"] else "FAILED"),
            file=out)
    print(report.describe(), file=out)
    if args.verify and report.ok and report.anchors_total < 1:
        print("verify: FAILED (no checkpoint anchor in the verification "
              "window)", file=out)
    if args.log_out:
        print("wrote %s" % args.log_out, file=out)
    if args.report_out:
        print("wrote %s" % args.report_out, file=out)
    return 0 if verified else 1


def _parse_tiers(spec):
    """Parse ``--tiers`` 'LIMIT:EVERY[,...]' (LIMIT in seconds, 'inf'
    for unbounded) into :class:`ThinningPolicy` tier tuples."""
    from repro.common.units import seconds

    tiers = []
    for part in spec.split(","):
        limit, _sep, every = part.partition(":")
        limit = limit.strip().lower()
        limit_us = None if limit in ("inf", "none", "*") \
            else seconds(float(limit))
        tiers.append((limit_us, int(every)))
    return tuple(tiers)


def cmd_thin(args, out):
    """Record a scenario with the replay event log on, apply an
    age-tiered thinning pass, and optionally replay-revive every
    tombstoned instant to prove the equivalence (exit 1 on any
    verification failure)."""
    from repro.checkpoint.gc import ThinningPolicy
    from repro.common.faults import FaultPlan, InjectedCrash
    from repro.common.units import seconds
    from repro.replay.replayer import record_scenario

    name = _resolve_scenario(args)
    recording = None
    plan = None
    if args.crash:
        # Armed at recording time but only ever hit inside thin():
        # the recording itself runs clean.
        plan = FaultPlan.parse("thin.drop_refs", seed=args.seed)
        recording = get_workload(name).default_recording()
        recording.fault_plan = plan
    recorded = record_scenario(name, units=args.units, recording=recording)
    dv = recorded.dejaview
    policy_kwargs = {}
    if args.recent_window is not None:
        policy_kwargs["recent_window_us"] = seconds(args.recent_window)
    if args.tiers is not None:
        policy_kwargs["tiers"] = _parse_tiers(args.tiers)
    policy = ThinningPolicy(**policy_kwargs)
    checkpoints = dv.checkpoint_count
    bytes_before = dv.storage.total_compressed_bytes
    crash = None
    recovery = None
    try:
        report = dv.thin_checkpoints(policy=policy, compact=True)
    except InjectedCrash as exc:
        crash = exc
        plan.disarm()
        recovery = dv.recover()
        # Idempotent completion: the re-run selects the same survivors
        # and picks up whatever the crash interrupted.
        report = dv.thin_checkpoints(policy=policy, compact=True)
    bytes_after = dv.storage.total_compressed_bytes
    verified = []
    failures = []
    if args.verify:
        from repro.checkpoint.restore import ReviveError

        timestamps = {r.checkpoint_id: r.timestamp_us
                      for r in dv.engine.history}
        for image_id in dv.storage.thinned_ids():
            if image_id not in timestamps:
                continue
            try:
                result = dv.take_me_back(timestamps[image_id])
            except ReviveError as exc:
                failures.append({"checkpoint": image_id,
                                 "error": str(exc)})
                continue
            if result.checkpoint_id == image_id and result.replayed:
                verified.append(image_id)
            else:
                failures.append({
                    "checkpoint": image_id,
                    "error": "revived %d (replayed=%s) instead"
                             % (result.checkpoint_id, result.replayed)})
    ok = not failures
    summary = {
        "scenario": name,
        "checkpoints": checkpoints,
        "thinned": list(report.thinned_images),
        "tombstones": report.tombstones,
        "skipped_required": list(report.skipped_required),
        "skipped_unanchored": list(report.skipped_unanchored),
        "bytes_before": bytes_before,
        "bytes_after": bytes_after,
        "bytes_freed": report.image_bytes_freed,
        "crash": str(crash) if crash is not None else None,
        "recovery_ok": recovery["ok"] if recovery is not None else None,
        "verified": verified,
        "failures": failures,
        "ok": ok,
    }
    if args.json:
        json.dump(summary, out, indent=2, default=str)
        print(file=out)
        return 0 if ok else 1
    print("thin: %s scenario, %d checkpoint(s), policy recent=%s "
          "tiers=%s" % (name, checkpoints,
                        format_duration_us(policy.recent_window_us),
                        ",".join("%s:%d" % (
                            "inf" if limit is None
                            else format_duration_us(limit), every)
                            for limit, every in policy.tiers)), file=out)
    if crash is not None:
        print("injected: %s (recovery %s, pass re-run)" % (
            crash, "ok" if recovery["ok"] else "FAILED"), file=out)
    reduction = (1.0 - bytes_after / bytes_before) if bytes_before else 0.0
    print("tombstoned %d instant(s): %s" % (
        len(report.thinned_images),
        list(report.thinned_images) or "none"), file=out)
    print("storage: %s -> %s (%.1f%% reduction, %s of image bytes "
          "freed)" % (format_bytes(bytes_before),
                      format_bytes(bytes_after), 100.0 * reduction,
                      format_bytes(report.image_bytes_freed)), file=out)
    if report.skipped_required or report.skipped_unanchored:
        print("pinned: %s required by survivors, %s without a surviving "
              "anchor" % (list(report.skipped_required) or "none",
                          list(report.skipped_unanchored) or "none"),
              file=out)
    if args.verify:
        print("replay-revive: %d/%d thinned instant(s) verified "
              "bit-identical" % (len(verified),
                                 len(verified) + len(failures)), file=out)
        for failure in failures:
            print("  FAILED checkpoint %s: %s" % (
                failure["checkpoint"], failure["error"]), file=out)
    return 0 if ok else 1


def _fleet_observability(args, want_watchdog=False):
    """Extra :class:`~repro.server.fleet.Fleet` kwargs for the fleet
    observability flags: a flight recorder when journaling or trace
    export is requested, and an SLO watchdog when rules are given (or
    whenever the journal is on — alerts belong in it)."""
    kwargs = {}
    if args.journal_dir is not None or args.trace_out is not None:
        from repro.common.flightrec import FlightRecorder

        kwargs["flightrec"] = FlightRecorder(directory=args.journal_dir)
    if args.slo is not None or want_watchdog or "flightrec" in kwargs:
        from repro.common.slo import SLOWatchdog, parse_slos

        rules = parse_slos(args.slo) if args.slo else None
        kwargs["watchdog"] = SLOWatchdog(rules)
    if getattr(args, "thin", False):
        from repro.checkpoint.gc import ThinningPolicy

        kwargs["thinning"] = ThinningPolicy()
    return kwargs


def _write_fleet_exports(args, fleet, stats):
    """Write ``--trace-out`` / ``--prom-out`` files; returns the paths."""
    written = []
    if getattr(args, "trace_out", None):
        from repro.common.export import chrome_trace_json

        replay = fleet.flightrec.replay()
        with open(args.trace_out, "w") as fh:
            fh.write(chrome_trace_json(replay.records))
        written.append(args.trace_out)
    if getattr(args, "prom_out", None):
        from repro.common.export import prometheus_text

        labels = {"fleet_seed": args.seed}
        body = prometheus_text(stats["rollup"], labels=labels)
        body += prometheus_text(stats["fleet_metrics"],
                                prefix="dejaview_fleet", labels=labels)
        with open(args.prom_out, "w") as fh:
            fh.write(body)
        written.append(args.prom_out)
    return written


def _print_slo(slo, out):
    print("slo standings (%d evaluation(s), %d alert(s)):" % (
        slo["evaluations"], slo["alerts_emitted"]), file=out)
    for verdict in slo["verdicts"] or ():
        state = ("no data" if verdict["ok"] is None
                 else "ok" if verdict["ok"] else "VIOLATED")
        metric = verdict["metric"] if not verdict["stat"] \
            else "%s:%s" % (verdict["metric"], verdict["stat"])
        value = verdict["value"]
        if isinstance(value, float):
            value = "%.4g" % value
        print("  %-16s %-8s %s %s %g (value=%s)" % (
            verdict["name"], state, metric, verdict["op"],
            verdict["threshold"], value), file=out)


def _print_journal_line(stats, out):
    if "journal" in stats:
        print("flight journal: %d record(s) written, %d segment(s) "
              "retained" % (stats["journal"]["records_written"],
                            stats["journal"]["segments_retained"]),
              file=out)


def _run_fleet(args):
    from repro.workloads.fleet_wl import run_fleet

    return run_fleet(args.sessions, seed=args.seed,
                     units_scale=args.units_scale, shards=args.shards,
                     **_fleet_observability(args))


def cmd_serve(args, out):
    """Run N sessions to completion under the fleet scheduler and print
    the service-level report."""
    fleet = _run_fleet(args)
    stats = fleet.stats()
    written = _write_fleet_exports(args, fleet, stats)
    if args.json:
        json.dump(stats, out, indent=2, default=str)
        print(file=out)
        return 0
    print("fleet: %d session(s), seed %d" % (len(fleet), args.seed),
          file=out)
    print("service clock: %s (sum of per-session activity)" %
          format_duration_us(stats["service_clock_us"]), file=out)
    for name, info in stats["sessions"].items():
        print("  %-6s %-8s %-10s %3d/%3d units, %3d checkpoint(s), "
              "clock %s" % (
                  name, info["scenario"], info["state"],
                  info["units_done"], info["units_total"],
                  info["checkpoints"],
                  format_duration_us(info["clock_us"])), file=out)
    cas = stats["cas"]
    print("shared page store: %d page(s), %s physical "
          "(cross-session dedup ratio %.1f%%, %d page(s) shared)" % (
              cas["cas_pages"],
              format_bytes(cas["physical_uncompressed_bytes"]),
              100.0 * cas["dedup_ratio"],
              cas["cross_pages_deduped"]), file=out)
    _print_shard_table(cas, out)
    _print_thinning(stats, out)
    if "slo" in stats:
        _print_slo(stats["slo"], out)
    _print_journal_line(stats, out)
    for path in written:
        print("wrote %s" % path, file=out)
    return 0


def _print_thinning(stats, out):
    if "thinning" not in stats:
        return
    th = stats["thinning"]
    print("thinning: %d pass(es), %d checkpoint(s) tombstoned, %s freed"
          % (th["passes"], th["checkpoints_thinned"],
             format_bytes(th["bytes_freed"])), file=out)
    for name, count in sorted(th["tombstones"].items()):
        print("  %-6s %d tombstone(s)" % (name, count), file=out)


def cmd_fleet_stats(args, out):
    """Run a fleet and print the rolled-up telemetry (fleet counters plus
    the per-session metric rollup)."""
    fleet = _run_fleet(args)
    stats = fleet.stats()
    written = _write_fleet_exports(args, fleet, stats)
    if args.json:
        json.dump(stats, out, indent=2, default=str)
        print(file=out)
        return 0
    print("fleet telemetry (%d session(s), seed %d):" % (
        len(fleet), args.seed), file=out)
    print("scheduler counters:", file=out)
    for key, value in sorted(stats["fleet_metrics"]["counters"].items()):
        print("  %-36s %d" % (key, value), file=out)
    step = stats["fleet_metrics"]["histograms"].get("fleet.step_us")
    if step and step["count"]:
        print("step time (virtual us): count=%d p50=%.0f p95=%.0f max=%.0f"
              % (step["count"], step["p50"], step["p95"], step["max"]),
              file=out)
    print("session rollup counters (summed):", file=out)
    for key, value in sorted(stats["rollup"]["counters"].items()):
        print("  %-36s %d" % (key, value), file=out)
    if "faults" in stats:
        print("failpoint rollup (all sessions):", file=out)
        _print_fault_table(stats["faults"]["sites"], out)
    _print_thinning(stats, out)
    if "branches" in stats:
        br = stats["branches"]
        print("branches: %d forked, %d fork failure(s), %d deleted" % (
            br["forked"], br["fork_failures"], br["deleted"]), file=out)
        for name, info in sorted(br["live"].items()):
            print("  %-6s parent=%s@%d shared=%s private=%s" % (
                name, info["parent"], info["source_checkpoint"],
                format_bytes(info["shared_bytes"]),
                format_bytes(info["private_bytes"])), file=out)
    cas = stats["cas"]
    print("shared page store: dedup ratio %.1f%%, %d cross-session "
          "page(s), %d orphan(s) reclaimed" % (
              100.0 * cas["dedup_ratio"], cas["cross_pages_deduped"],
              cas["orphans_reclaimed"]), file=out)
    _print_shard_table(cas, out)
    wb = stats.get("writeback")
    if wb is not None:
        print("writeback scheduling: %d shard(s), group commit at %s, "
              "backpressure at %s (%d force flush(es))" % (
                  wb["shards"], format_bytes(wb["group_commit_bytes"]),
                  format_bytes(wb["max_backlog_bytes"]),
                  wb["backlog_force_flushes"]), file=out)
    if "slo" in stats:
        _print_slo(stats["slo"], out)
    _print_journal_line(stats, out)
    for path in written:
        print("wrote %s" % path, file=out)
    return 0


def cmd_revive_storm(args, out):
    """Fork ``--branches`` members from one checkpoint of a recorded
    parent and run them to completion, printing fork latency and the
    shared/private page economics (section 5.2 branchable revive)."""
    from repro.workloads.fleet_wl import run_revive_storm

    fleet, report = run_revive_storm(
        args.branches, seed=args.seed, scenario=args.scenario,
        parent_units=args.parent_units, branch_units=args.branch_units,
        crash_branch=args.crash_branch, shards=args.shards)
    stats = fleet.stats()
    if args.json:
        json.dump({"storm": report, "final": stats}, out, indent=2,
                  default=str)
        print(file=out)
        return 0
    print("revive storm: %d branch(es) from checkpoint %d of %r "
          "(scenario %s, seed %d)" % (
              args.branches, report["source_checkpoint"], "p0",
              args.scenario, args.seed), file=out)
    forks = sorted(report["fork_us"])
    if forks:
        print("fork latency (virtual us): p50=%d p95=%d max=%d" % (
            forks[len(forks) // 2],
            forks[min(len(forks) - 1, int(len(forks) * 0.95))],
            forks[-1]), file=out)
    at_fork = report["split_at_fork"].values()
    total_shared = sum(s["shared_bytes"] for s in at_fork)
    total_private = sum(s["private_bytes"] for s in at_fork)
    denom = total_shared + total_private
    print("pages at fork: %s shared, %s private (%.1f%% shared)" % (
        format_bytes(total_shared), format_bytes(total_private),
        100.0 * total_shared / denom if denom else 0.0), file=out)
    if report["crashed"] is not None:
        print("injected crash: %s at %s, recovery %s" % (
            report["crashed"]["name"], report["crashed"]["site"],
            "ok" if report["crashed"]["recovery_ok"] else "FAILED"),
            file=out)
    for name, info in sorted(stats["sessions"].items()):
        if info.get("kind") != "branch":
            continue
        split = report["split_after_run"].get(name, {})
        print("  %-6s %-8s %-10s %3d/%3d units, %d checkpoint(s), "
              "shared %s / private %s" % (
                  name, info["scenario"], info["state"],
                  info["units_done"], info["units_total"],
                  info["checkpoints"],
                  format_bytes(split.get("shared_bytes", 0)),
                  format_bytes(split.get("private_bytes", 0))), file=out)
    cas = stats["cas"]
    print("shared page store: %s physical, cross-session dedup "
          "ratio %.1f%%" % (
              format_bytes(cas["physical_uncompressed_bytes"]),
              100.0 * cas["dedup_ratio"]), file=out)
    return 0


def _top_frame(fleet):
    """One ``repro top`` dashboard frame as a JSON-ready dict."""
    members = []
    for member in fleet.members():
        info = {
            "name": member.name,
            "scenario": member.scenario,
            "state": member.state,
            "units_done": member.units_done,
            "units_total": member.run.units if member.run else 0,
            "clock_us": (member.session.clock.now_us
                         if member.session else 0),
            "checkpoints": (member.dejaview.checkpoint_count
                            if member.dejaview else 0),
            "thinned": (len(member.dejaview.storage.thinned_ids())
                        if member.dejaview else 0),
        }
        if member.is_branch:
            info["kind"] = "branch"
            info["parent"] = member.parent
            info["source_checkpoint"] = member.source_checkpoint
        telemetry = member.dejaview.telemetry \
            if member.dejaview is not None else None
        if telemetry is not None and telemetry.enabled:
            down = telemetry.metrics.snapshot()["histograms"].get(
                "checkpoint.downtime_us")
            if down and down["count"]:
                info["downtime_p95_us"] = down["p95"]
        if member.quota_violation is not None:
            attr, used, limit = member.quota_violation
            info["quota"] = {"quota": attr, "used": used, "limit": limit}
        members.append(info)
    frame = {
        "service_clock_us": fleet.clock.now_us,
        "steps": fleet.telemetry.metrics.counter("fleet.steps").value,
        "queue_depth": len(fleet.runnable()),
        "dedup_ratio": fleet.dedup_ratio(),
        "writeback_backlog": fleet.cas.backlog_bytes(),
        "flush_batches": fleet.telemetry.metrics.counter(
            "fleet.flush_batches").value,
        "checkpoints_thinned": fleet.telemetry.metrics.counter(
            "fleet.checkpoints_thinned").value,
        "members": members,
    }
    if fleet.watchdog is not None:
        fleet.check_slos()
        frame["slo_standing"] = fleet.watchdog.standing()
    return frame


def _print_top_frame(frame, index, out):
    slo_text = ""
    standing = frame.get("slo_standing")
    if standing is not None:
        violated = sorted(name for name, ok in standing.items()
                          if ok is False)
        slo_text = " slo=%s" % (
            "VIOLATED(%s)" % ",".join(violated) if violated else "ok")
    thin_text = ""
    if frame.get("checkpoints_thinned"):
        thin_text = " thinned=%d" % frame["checkpoints_thinned"]
    print("frame %-3d t=%-10s steps=%-5d queue=%d dedup=%4.1f%% "
          "writeback_backlog=%-8s flushes=%d%s%s" % (
              index, format_duration_us(frame["service_clock_us"]),
              frame["steps"], frame["queue_depth"],
              100.0 * frame["dedup_ratio"],
              format_bytes(frame["writeback_backlog"]),
              frame["flush_batches"], thin_text, slo_text), file=out)
    for member in frame["members"]:
        down = format_duration_us(member["downtime_p95_us"]) \
            if "downtime_p95_us" in member else "-"
        extra = ""
        if member.get("thinned"):
            extra = " thin=%d" % member["thinned"]
        if member.get("kind") == "branch":
            extra = " branch-of:%s@%d" % (
                member["parent"], member["source_checkpoint"])
        if "quota" in member:
            extra += " quota:%s %d>%d" % (
                member["quota"]["quota"], member["quota"]["used"],
                member["quota"]["limit"])
        print("  %-6s %-8s %-10s %3d/%3d units ckpt=%-3d p95=%-9s "
              "clock=%s%s" % (
                  member["name"], member["scenario"], member["state"],
                  member["units_done"], member["units_total"],
                  member["checkpoints"], down,
                  format_duration_us(member["clock_us"]), extra), file=out)


def cmd_top(args, out):
    """The fleet dashboard: step the fleet frame by frame and render
    per-member state, checkpoint-downtime p95, dedup ratio, scheduler
    queue depth, and SLO standings on the service clock."""
    from repro.workloads.fleet_wl import build_fleet

    fleet = build_fleet(args.sessions, seed=args.seed,
                        units_scale=args.units_scale, shards=args.shards,
                        **_fleet_observability(args, want_watchdog=True))
    frames = []
    for index in range(args.frames):
        fleet.run_to_completion(max_steps=args.steps_per_frame)
        frame = _top_frame(fleet)
        frames.append(frame)
        if not args.json:
            _print_top_frame(frame, index, out)
        if not fleet.runnable():
            break
    stats = fleet.stats()
    written = _write_fleet_exports(args, fleet, stats)
    if args.json:
        json.dump({"frames": frames, "final": stats}, out, indent=2,
                  default=str)
        print(file=out)
        return 0
    states = {}
    for member in fleet.members():
        states[member.state] = states.get(member.state, 0) + 1
    print("fleet settled: %s; service clock %s" % (
        " ".join("%s=%d" % kv for kv in sorted(states.items())),
        format_duration_us(fleet.clock.now_us)), file=out)
    _print_journal_line(stats, out)
    for path in written:
        print("wrote %s" % path, file=out)
    return 0


def cmd_demo(_args, out):
    from repro.common.units import seconds
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession
    from repro.display.commands import Region
    from repro.index.query import Query

    session = DesktopSession()
    dv = DejaView(session)
    editor = session.launch("editor")
    editor.focus()
    editor.draw_fill(Region(0, 0, session.width, session.height), 0x204080)
    editor.show_text("demo: the personal virtual computer recorder")
    editor.write_file("/home/user/demo.txt", b"recorded demo file")
    dv.tick()
    t_then = session.clock.now_us
    session.clock.advance_us(seconds(5))
    session.fs.unlink("/home/user/demo.txt")
    dv.tick()

    print("recorded 5 s of desktop activity", file=out)
    hits = dv.search(Query.keywords("recorder"), render=False)
    print("search 'recorder': %d hit(s) at t=%.1fs" % (
        len(hits), hits[0].timestamp_us / 1e6), file=out)
    revived = dv.take_me_back(t_then)
    print("revived %r; deleted file restored: %s" % (
        revived.container.name,
        revived.container.mount.read_file("/home/user/demo.txt").decode()),
        file=out)
    return 0


def cmd_figures(_args, out):
    print("paper experiment -> bench file (pytest <file> "
          "--benchmark-only -s):", file=out)
    for key, path in FIGURES.items():
        print("  %-10s %s" % (key, path), file=out)
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "scenarios": cmd_scenarios,
        "run": cmd_run,
        "stats": cmd_stats,
        "doctor": cmd_doctor,
        "replay": cmd_replay,
        "thin": cmd_thin,
        "serve": cmd_serve,
        "fleet-stats": cmd_fleet_stats,
        "revive-storm": cmd_revive_storm,
        "top": cmd_top,
        "demo": cmd_demo,
        "figures": cmd_figures,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":
    sys.exit(main())
