"""Command-line interface.

Usage::

    python -m repro.cli scenarios
    python -m repro.cli run web [--units N] [--no-display] [--no-index]
                                [--no-checkpoints] [--policy] [--compress]
    python -m repro.cli demo
    python -m repro.cli figures

``run`` executes one Table 1 scenario and prints a report: simulated
duration, checkpoint latency summary, storage growth decomposition, and a
sample search.  ``demo`` runs a 30-second guided record/search/revive tour.
"""

import argparse
import sys

from repro.common.units import format_bytes, format_duration_us, format_rate
from repro.desktop.dejaview import RecordingConfig
from repro.workloads import SCENARIOS, get_workload
from repro.workloads import scenarios as _scenarios  # noqa: F401 (registry)

FIGURES = {
    "table1": "benchmarks/bench_table1_scenarios.py",
    "fig2": "benchmarks/bench_fig2_overhead.py",
    "fig3": "benchmarks/bench_fig3_checkpoint_latency.py",
    "fig4": "benchmarks/bench_fig4_storage_growth.py",
    "fig5": "benchmarks/bench_fig5_browse_search.py",
    "fig6": "benchmarks/bench_fig6_playback_speedup.py",
    "fig7": "benchmarks/bench_fig7_revive_latency.py",
    "policy": "benchmarks/bench_policy_effectiveness.py",
    "ablation": "benchmarks/bench_ablation_optimizations.py",
    "screencast": "benchmarks/bench_baseline_screencast.py",
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DejaView reproduction (SOSP 2007) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list the Table 1 workload scenarios")

    run = sub.add_parser("run", help="run one scenario and print a report")
    run.add_argument("scenario", help="scenario name (see 'scenarios')")
    run.add_argument("--units", type=int, default=None,
                     help="work units (default: the scenario's standard run)")
    run.add_argument("--no-display", action="store_true",
                     help="disable display recording")
    run.add_argument("--no-index", action="store_true",
                     help="disable text indexing")
    run.add_argument("--no-checkpoints", action="store_true",
                     help="disable checkpointing")
    run.add_argument("--policy", action="store_true",
                     help="checkpoint under the section 5.1.3 policy "
                          "instead of fixed 1 Hz")
    run.add_argument("--compress", action="store_true",
                     help="account compressed checkpoint storage")

    sub.add_parser("demo", help="record/search/revive guided tour")
    sub.add_parser("figures", help="map of paper figures to bench files")
    return parser


def cmd_scenarios(_args, out):
    get_workload("web")  # populate registry
    print("Table 1 scenarios:", file=out)
    for name in sorted(SCENARIOS):
        workload = SCENARIOS[name]()
        print("  %-8s %s (default %d units)" % (
            name, workload.description, workload.default_units), file=out)
    return 0


def cmd_run(args, out):
    workload = get_workload(args.scenario)
    config = RecordingConfig(
        record_display=not args.no_display,
        record_index=not args.no_index,
        record_checkpoints=not args.no_checkpoints,
        use_policy=args.policy,
        compress_checkpoints=args.compress,
    )
    if args.scenario == "desktop" and not args.no_checkpoints:
        config.use_policy = True
    print("running %s (%d units)..." % (
        args.scenario, args.units or workload.default_units), file=out)
    run = workload.run(recording=config, units=args.units)
    dv = run.dejaview

    print("simulated duration: %.2f s" % run.duration_seconds, file=out)
    if dv.engine is not None and dv.engine.history:
        history = dv.engine.history
        avg_down = sum(r.downtime_us for r in history) / len(history)
        max_down = max(r.downtime_us for r in history)
        print("checkpoints: %d (avg downtime %s, max %s)" % (
            len(history), format_duration_us(avg_down),
            format_duration_us(max_down)), file=out)
    rates = run.storage_growth_rates()
    print("storage growth:", file=out)
    for stream in ("display", "index", "checkpoint",
                   "checkpoint_compressed", "fs"):
        print("  %-22s %s" % (stream, format_rate(rates[stream])), file=out)
    report = dv.storage_report()
    print("record footprint: display=%s index=%s checkpoints=%s" % (
        format_bytes(report["display"]),
        format_bytes(report["index"]),
        format_bytes(report["checkpoint_uncompressed"])), file=out)
    if dv.database is not None and dv.database.vocabulary():
        from repro.index.query import Query

        word = dv.database.vocabulary()[len(dv.database.vocabulary()) // 2]
        results = dv.search_engine().search(Query.keywords(word),
                                            render=False, limit=3)
        print("sample search %r: %d hit(s)" % (word, len(results)), file=out)
    return 0


def cmd_demo(_args, out):
    from repro.common.units import seconds
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession
    from repro.display.commands import Region
    from repro.index.query import Query

    session = DesktopSession()
    dv = DejaView(session)
    editor = session.launch("editor")
    editor.focus()
    editor.draw_fill(Region(0, 0, session.width, session.height), 0x204080)
    editor.show_text("demo: the personal virtual computer recorder")
    editor.write_file("/home/user/demo.txt", b"recorded demo file")
    dv.tick()
    t_then = session.clock.now_us
    session.clock.advance_us(seconds(5))
    session.fs.unlink("/home/user/demo.txt")
    dv.tick()

    print("recorded 5 s of desktop activity", file=out)
    hits = dv.search(Query.keywords("recorder"), render=False)
    print("search 'recorder': %d hit(s) at t=%.1fs" % (
        len(hits), hits[0].timestamp_us / 1e6), file=out)
    revived = dv.take_me_back(t_then)
    print("revived %r; deleted file restored: %s" % (
        revived.container.name,
        revived.container.mount.read_file("/home/user/demo.txt").decode()),
        file=out)
    return 0


def cmd_figures(_args, out):
    print("paper experiment -> bench file (pytest <file> "
          "--benchmark-only -s):", file=out)
    for key, path in FIGURES.items():
        print("  %-10s %s" % (key, path), file=out)
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "scenarios": cmd_scenarios,
        "run": cmd_run,
        "demo": cmd_demo,
        "figures": cmd_figures,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":
    sys.exit(main())
