"""Command-line interface.

Usage::

    python -m repro.cli scenarios
    python -m repro.cli run web [--units N] [--no-display] [--no-index]
                                [--no-checkpoints] [--policy] [--compress]
    python -m repro.cli stats web [--units N]
    python -m repro.cli doctor web [--faults SPEC] [--seed N]
    python -m repro.cli serve [--sessions N] [--seed S] [--units-scale F]
    python -m repro.cli fleet-stats [--sessions N] [--seed S]
    python -m repro.cli demo
    python -m repro.cli figures

``run`` executes one Table 1 scenario and prints a report: simulated
duration, checkpoint latency summary, storage growth decomposition, and a
sample search.  ``stats`` runs a scenario and prints its telemetry
snapshot (counters, histogram summaries, recent span trees).  ``demo``
runs a 30-second guided record/search/revive tour.

``--json`` (accepted globally or after any subcommand) switches ``run``
and ``stats`` to machine-readable JSON on stdout.
"""

import argparse
import json
import sys

from repro.common.units import format_bytes, format_duration_us, format_rate
from repro.desktop.dejaview import RecordingConfig
from repro.workloads import SCENARIOS, get_workload
from repro.workloads import scenarios as _scenarios  # noqa: F401 (registry)

FIGURES = {
    "table1": "benchmarks/bench_table1_scenarios.py",
    "fig2": "benchmarks/bench_fig2_overhead.py",
    "fig3": "benchmarks/bench_fig3_checkpoint_latency.py",
    "fig4": "benchmarks/bench_fig4_storage_growth.py",
    "fig5": "benchmarks/bench_fig5_browse_search.py",
    "fig6": "benchmarks/bench_fig6_playback_speedup.py",
    "fig7": "benchmarks/bench_fig7_revive_latency.py",
    "policy": "benchmarks/bench_policy_effectiveness.py",
    "ablation": "benchmarks/bench_ablation_optimizations.py",
    "screencast": "benchmarks/bench_baseline_screencast.py",
}


def _add_scenario_args(sub):
    """Scenario selection shared by ``run`` and ``stats``: a positional
    name or an equivalent ``--scenario`` option."""
    sub.add_argument("scenario", nargs="?", default=None,
                     help="scenario name (see 'scenarios')")
    sub.add_argument("--scenario", dest="scenario_opt", default=None,
                     metavar="NAME",
                     help="scenario name (alternative to the positional)")
    sub.add_argument("--units", type=int, default=None,
                     help="work units (default: the scenario's standard run)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DejaView reproduction (SOSP 2007) command line",
    )
    # Global: accepted before the subcommand; the per-subcommand copies
    # below use SUPPRESS so "repro run web --json" works too without the
    # subparser default overwriting this one.
    parser.add_argument("--json", action="store_true", default=False,
                        help="emit machine-readable JSON (run / stats)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list the Table 1 workload scenarios")

    run = sub.add_parser("run", help="run one scenario and print a report")
    _add_scenario_args(run)
    run.add_argument("--no-display", action="store_true",
                     help="disable display recording")
    run.add_argument("--no-index", action="store_true",
                     help="disable text indexing")
    run.add_argument("--no-checkpoints", action="store_true",
                     help="disable checkpointing")
    run.add_argument("--policy", action="store_true",
                     help="checkpoint under the section 5.1.3 policy "
                          "instead of fixed 1 Hz")
    run.add_argument("--compress", action="store_true",
                     help="account compressed checkpoint storage")

    stats = sub.add_parser(
        "stats", help="run one scenario and print its telemetry snapshot")
    _add_scenario_args(stats)
    stats.add_argument("--spans", type=int, default=4,
                       help="recent root spans to include (default 4)")

    doctor = sub.add_parser(
        "doctor",
        help="run a scenario under fault injection, then recover and "
             "verify the record (fsck for the whole recording)")
    _add_scenario_args(doctor)
    doctor.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault plan, e.g. 'lfs.append.mid_block:after=3' or "
             "'recorder.log.append:mode=io,p=0.2,repeat;"
             "storage.store.pre_commit:after=2' "
             "(default: no faults, recovery still runs)")
    doctor.add_argument("--seed", type=int, default=0,
                        help="RNG seed for probabilistic fault rules")
    doctor.add_argument("--list-failpoints", action="store_true",
                        help="print the registered failpoint catalog and exit")

    def _add_fleet_args(command):
        command.add_argument("--sessions", type=int, default=4,
                             help="number of sessions to admit (default 4)")
        command.add_argument("--seed", type=int, default=0,
                             help="scheduler interleaving seed (default 0)")
        command.add_argument("--units-scale", type=float, default=1.0,
                             help="scale every session's unit count")

    serve = sub.add_parser(
        "serve",
        help="record N sessions at once under the deterministic fleet "
             "scheduler with a shared checkpoint page store")
    _add_fleet_args(serve)

    fleet_stats = sub.add_parser(
        "fleet-stats",
        help="run a fleet and print its rolled-up telemetry snapshot")
    _add_fleet_args(fleet_stats)

    sub.add_parser("demo", help="record/search/revive guided tour")
    sub.add_parser("figures", help="map of paper figures to bench files")
    for command in sub.choices.values():
        command.add_argument("--json", action="store_true",
                             default=argparse.SUPPRESS,
                             help=argparse.SUPPRESS)
    return parser


def _resolve_scenario(args):
    name = args.scenario_opt or args.scenario
    if name is None:
        print("error: a scenario is required (positional or --scenario)",
              file=sys.stderr)
        raise SystemExit(2)
    return name


def _run_scenario(args):
    """Build the recording config and run the workload (run / stats)."""
    name = _resolve_scenario(args)
    workload = get_workload(name)
    config = RecordingConfig(
        record_display=not getattr(args, "no_display", False),
        record_index=not getattr(args, "no_index", False),
        record_checkpoints=not getattr(args, "no_checkpoints", False),
        use_policy=getattr(args, "policy", False),
        compress_checkpoints=getattr(args, "compress", False),
    )
    if name == "desktop" and config.record_checkpoints:
        config.use_policy = True
    return name, workload.run(recording=config, units=args.units)


def cmd_scenarios(_args, out):
    get_workload("web")  # populate registry
    print("Table 1 scenarios:", file=out)
    for name in sorted(SCENARIOS):
        workload = SCENARIOS[name]()
        print("  %-8s %s (default %d units)" % (
            name, workload.description, workload.default_units), file=out)
    return 0


def _sample_search(dv):
    """Exercise the query path so telemetry reports index latency and the
    query-planner counters: one full-history keyword search, one windowed
    search over the recording's second half (populates
    ``index.buckets_skipped`` / ``index.postings_pruned``), and a repeat
    of the windowed query (populates ``index.interval_cache_hits``).
    Returns a summary dict or None when there is no indexed text."""
    if dv.database is None or not dv.database.vocabulary():
        return None
    from repro.index.query import Query

    database = dv.database
    vocabulary = database.vocabulary()
    word = vocabulary[len(vocabulary) // 2]
    engine = dv.search_engine()
    results = engine.search(Query.keywords(word), render=False, limit=3)
    sample = {"word": word, "hits": len(results)}
    end_us = database.clock.now_us
    if end_us > 1:
        windowed_query = Query.keywords(word, start_us=end_us // 2,
                                        end_us=end_us)
        windowed = engine.search(windowed_query, render=False, limit=3)
        engine.search(windowed_query, render=False, limit=3)  # cache hit
        sample["windowed_hits"] = len(windowed)
    return sample


def cmd_run(args, out):
    if args.json:
        name, run = _run_scenario(args)
        dv = run.dejaview
        sample = _sample_search(dv)
        report = {
            "scenario": name,
            "simulated_seconds": run.duration_seconds,
            "checkpoints": dv.checkpoint_count,
            "storage_growth_rates": run.storage_growth_rates(),
            "storage_report": dv.storage_report(),
            "telemetry": dv.telemetry_snapshot(),
        }
        if sample is not None:
            report["sample_search"] = sample
        json.dump(report, out, indent=2, default=str)
        print(file=out)
        return 0
    name = _resolve_scenario(args)
    units = args.units or get_workload(name).default_units
    print("running %s (%d units)..." % (name, units), file=out)
    _name, run = _run_scenario(args)
    dv = run.dejaview
    print("simulated duration: %.2f s" % run.duration_seconds, file=out)
    if dv.engine is not None and dv.engine.history:
        history = dv.engine.history
        avg_down = sum(r.downtime_us for r in history) / len(history)
        max_down = max(r.downtime_us for r in history)
        print("checkpoints: %d (avg downtime %s, max %s)" % (
            len(history), format_duration_us(avg_down),
            format_duration_us(max_down)), file=out)
    rates = run.storage_growth_rates()
    print("storage growth:", file=out)
    for stream in ("display", "index", "checkpoint",
                   "checkpoint_compressed", "fs"):
        print("  %-22s %s" % (stream, format_rate(rates[stream])), file=out)
    report = dv.storage_report()
    print("record footprint: display=%s index=%s checkpoints=%s" % (
        format_bytes(report["display"]),
        format_bytes(report["index"]),
        format_bytes(report["checkpoint_uncompressed"])), file=out)
    if report.get("pages_deduped"):
        print("page-store dedup: %d page(s), %s saved (%d orphan(s) "
              "reclaimed)" % (
                  report["pages_deduped"],
                  format_bytes(report["dedup_bytes_saved"]),
                  report["cas_orphans_reclaimed"]), file=out)
    sample = _sample_search(dv)
    if sample is not None:
        print("sample search %r: %d hit(s)" % (
            sample["word"], sample["hits"]), file=out)
    return 0


def _format_span(span_dict, out, depth=0):
    wall = span_dict.get("wall_ns")
    print("  %s%-28s virtual=%-12s wall=%s" % (
        "  " * depth,
        span_dict.get("name", "?"),
        format_duration_us(span_dict.get("virtual_us") or 0),
        "%.3f ms" % (wall / 1e6) if wall is not None else "?"), file=out)
    for child in span_dict.get("children", ()):
        _format_span(child, out, depth + 1)


def cmd_stats(args, out):
    name, run = _run_scenario(args)
    _sample_search(run.dejaview)  # exercise the query path for its metrics
    snapshot = run.dejaview.telemetry_snapshot(span_limit=args.spans)
    if args.json:
        snapshot["scenario"] = name
        json.dump(snapshot, out, indent=2, default=str)
        print(file=out)
        return 0
    print("telemetry for %s scenario:" % name, file=out)
    print("counters:", file=out)
    for key, value in sorted(snapshot["counters"].items()):
        print("  %-36s %d" % (key, value), file=out)
    print("gauges:", file=out)
    for key, value in sorted(snapshot["gauges"].items()):
        print("  %-36s %s" % (key, value), file=out)
    print("histograms (count / p50 / p95 / max):", file=out)
    for key, summary in sorted(snapshot["histograms"].items()):
        if not summary["count"]:
            continue
        print("  %-36s %d / %.0f / %.0f / %.0f" % (
            key, summary["count"], summary["p50"], summary["p95"],
            summary["max"]), file=out)
    bus = snapshot["event_bus"]
    print("event bus: published=%d delivered=%d errors=%d" % (
        bus["published"], bus["delivered"], bus["errors"]), file=out)
    spans = snapshot["spans"]
    print("spans: %d total, %d retained; most recent roots:" % (
        spans["span_count"], spans["retained_roots"]), file=out)
    for root in spans["recent_roots"]:
        _format_span(root, out)
    return 0


def cmd_doctor(args, out):
    """Run a scenario under fault injection, then recover and verify:
    the whole-record fsck.  Exit status 1 when the surviving checkpoint
    chain fails verification."""
    from repro.checkpoint.verify import verify_chain
    from repro.common.faults import FAILPOINTS, FaultPlan, InjectedCrash
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession

    if args.list_failpoints:
        if args.json:
            json.dump({"failpoints": FAILPOINTS}, out, indent=2)
            print(file=out)
            return 0
        print("registered failpoints:", file=out)
        for site in sorted(FAILPOINTS):
            print("  %-32s %s" % (site, FAILPOINTS[site]), file=out)
        return 0

    name = _resolve_scenario(args)
    workload = get_workload(name)
    plan = (FaultPlan.parse(args.faults, seed=args.seed)
            if args.faults else FaultPlan(seed=args.seed))
    config = RecordingConfig(fault_plan=plan)
    # Build the session and recorder up front (instead of letting the
    # workload build them) so the references survive an injected crash.
    session = DesktopSession()
    dv = DejaView(session, config)
    crash = None
    try:
        workload.run(units=args.units, session=session, dejaview=dv)
    except InjectedCrash as exc:
        crash = exc
    except IOError as exc:
        # A transient injected fault escaped the workload driver; real
        # applications would retry.  Recovery still runs.
        crash = exc

    recovery = dv.recover()
    verdict = verify_chain(dv.storage, session.fsstore)
    playback_ok = None
    if dv.recorder is not None:
        record = dv.display_record()
        if len(record.timeline):
            engine = dv.playback_engine()
            engine.play(record.start_us, record.end_us, fastest=True)
            playback_ok = True
    search_hits = None
    if dv.database is not None and dv.database.vocabulary():
        from repro.index.query import Query

        vocabulary = dv.database.vocabulary()
        word = vocabulary[len(vocabulary) // 2]
        search_hits = len(dv.search(Query.keywords(word), render=False))

    summary = {
        "scenario": name,
        "faults": args.faults,
        "crash": str(crash) if crash is not None else None,
        "fault_hits": plan.hit_snapshot(),
        "recovery": recovery,
        "chain_verified": verdict.ok,
        "issues": [str(issue) for issue in verdict.issues],
        "checkpoints_surviving": len(dv.storage),
        "playback_ok": playback_ok,
        "search_hits": search_hits,
    }
    if args.json:
        json.dump(summary, out, indent=2, default=str)
        print(file=out)
        return 0 if verdict.ok else 1

    print("doctor: %s scenario, faults=%s" % (name, args.faults or "none"),
          file=out)
    if crash is not None:
        print("injected: %s" % crash, file=out)
    fired = {site: counts for site, counts in plan.hit_snapshot().items()
             if counts["hits"]}
    for site, counts in sorted(fired.items()):
        print("  %-32s hits=%-5d fired=%d" % (
            site, counts["hits"], counts["fired"]), file=out)
    storage_report = recovery.get("storage", {})
    print("recovery: torn=%d chain-dropped=%d surviving=%d" % (
        len(storage_report.get("torn_dropped", ())),
        len(storage_report.get("chain_dropped", ())),
        len(dv.storage)), file=out)
    if "display" in recovery:
        display = recovery["display"]
        print("display: dropped %d log + %d screenshot bytes, "
              "%d timeline entries" % (
                  display["log_bytes_dropped"],
                  display["screenshot_bytes_dropped"],
                  display["timeline_entries_dropped"]), file=out)
    if "index" in recovery:
        print("index: dropped %d uncommitted, rebuilt %d postings" % (
            len(recovery["index"]["uncommitted_dropped"]),
            recovery["index"]["postings_rebuilt"]), file=out)
    print("chain verify: %s" % ("ok" if verdict.ok else "FAILED"), file=out)
    for issue in verdict.issues:
        print("  %s" % issue, file=out)
    if playback_ok:
        print("playback: ok (end to end)", file=out)
    if search_hits is not None:
        print("search: %d hit(s), no errors" % search_hits, file=out)
    return 0 if verdict.ok else 1


def _run_fleet(args):
    from repro.workloads.fleet_wl import run_fleet

    return run_fleet(args.sessions, seed=args.seed,
                     units_scale=args.units_scale)


def cmd_serve(args, out):
    """Run N sessions to completion under the fleet scheduler and print
    the service-level report."""
    fleet = _run_fleet(args)
    stats = fleet.stats()
    if args.json:
        json.dump(stats, out, indent=2, default=str)
        print(file=out)
        return 0
    print("fleet: %d session(s), seed %d" % (len(fleet), args.seed),
          file=out)
    print("service clock: %s (sum of per-session activity)" %
          format_duration_us(stats["service_clock_us"]), file=out)
    for name, info in stats["sessions"].items():
        print("  %-6s %-8s %-10s %3d/%3d units, %3d checkpoint(s), "
              "clock %s" % (
                  name, info["scenario"], info["state"],
                  info["units_done"], info["units_total"],
                  info["checkpoints"],
                  format_duration_us(info["clock_us"])), file=out)
    cas = stats["cas"]
    print("shared page store: %d page(s), %s physical "
          "(cross-session dedup ratio %.1f%%, %d page(s) shared)" % (
              cas["cas_pages"],
              format_bytes(cas["physical_uncompressed_bytes"]),
              100.0 * cas["dedup_ratio"],
              cas["cross_pages_deduped"]), file=out)
    return 0


def cmd_fleet_stats(args, out):
    """Run a fleet and print the rolled-up telemetry (fleet counters plus
    the per-session metric rollup)."""
    fleet = _run_fleet(args)
    stats = fleet.stats()
    if args.json:
        json.dump(stats, out, indent=2, default=str)
        print(file=out)
        return 0
    print("fleet telemetry (%d session(s), seed %d):" % (
        len(fleet), args.seed), file=out)
    print("scheduler counters:", file=out)
    for key, value in sorted(stats["fleet_metrics"]["counters"].items()):
        print("  %-36s %d" % (key, value), file=out)
    step = stats["fleet_metrics"]["histograms"].get("fleet.step_us")
    if step and step["count"]:
        print("step time (virtual us): count=%d p50=%.0f p95=%.0f max=%.0f"
              % (step["count"], step["p50"], step["p95"], step["max"]),
              file=out)
    print("session rollup counters (summed):", file=out)
    for key, value in sorted(stats["rollup"]["counters"].items()):
        print("  %-36s %d" % (key, value), file=out)
    cas = stats["cas"]
    print("shared page store: dedup ratio %.1f%%, %d cross-session "
          "page(s), %d orphan(s) reclaimed" % (
              100.0 * cas["dedup_ratio"], cas["cross_pages_deduped"],
              cas["orphans_reclaimed"]), file=out)
    return 0


def cmd_demo(_args, out):
    from repro.common.units import seconds
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession
    from repro.display.commands import Region
    from repro.index.query import Query

    session = DesktopSession()
    dv = DejaView(session)
    editor = session.launch("editor")
    editor.focus()
    editor.draw_fill(Region(0, 0, session.width, session.height), 0x204080)
    editor.show_text("demo: the personal virtual computer recorder")
    editor.write_file("/home/user/demo.txt", b"recorded demo file")
    dv.tick()
    t_then = session.clock.now_us
    session.clock.advance_us(seconds(5))
    session.fs.unlink("/home/user/demo.txt")
    dv.tick()

    print("recorded 5 s of desktop activity", file=out)
    hits = dv.search(Query.keywords("recorder"), render=False)
    print("search 'recorder': %d hit(s) at t=%.1fs" % (
        len(hits), hits[0].timestamp_us / 1e6), file=out)
    revived = dv.take_me_back(t_then)
    print("revived %r; deleted file restored: %s" % (
        revived.container.name,
        revived.container.mount.read_file("/home/user/demo.txt").decode()),
        file=out)
    return 0


def cmd_figures(_args, out):
    print("paper experiment -> bench file (pytest <file> "
          "--benchmark-only -s):", file=out)
    for key, path in FIGURES.items():
        print("  %-10s %s" % (key, path), file=out)
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "scenarios": cmd_scenarios,
        "run": cmd_run,
        "stats": cmd_stats,
        "doctor": cmd_doctor,
        "serve": cmd_serve,
        "fleet-stats": cmd_fleet_stats,
        "demo": cmd_demo,
        "figures": cmd_figures,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":
    sys.exit(main())
