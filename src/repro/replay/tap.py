"""Replay taps: the two ends of the nondeterminism boundary.

A *tap* is the object the vex substrate notifies whenever a
nondeterministic input crosses into the simulation: the virtual clock on
every advance, the kernel on every signal delivery, applications on
every RNG draw and socket open, the input router on every routed event,
the workload generator and fleet scheduler on every dispatch decision,
and DejaView itself at every checkpoint (anchor) and crash recovery
(barrier).

Three implementations share one call surface:

* :data:`NULL_TAP` — the shared inert tap (``active = False``); the
  default everywhere, mirroring ``NULL_TELEMETRY``/``NULL_FAULTS`` so an
  untapped session pays one attribute test per site.
* :class:`RecordingTap` — appends events to an :class:`EventLog`.
* :class:`VerifyingTap` — replay mode: consumes a previously recorded
  event list and checks each derived event against it in lockstep,
  raising :class:`DivergenceAbort` at the first mismatch.

Taps never charge the virtual clock — like telemetry and fault checks
they live outside the simulated cost model, so recording is bit-identical
on or off (property-tested in ``tests/test_replay.py``).

Clock advances are far too frequent to log individually; they are
batched: a rolling CRC-32 over the packed deltas plus a count, flushed
as one ``EV_CLOCK`` record every ``clock_batch`` advances and before any
other event, which keeps the stream canonical (the same execution always
frames batches identically).
"""

import struct
import zlib

from repro.common.faults import InjectedFault, resolve_faults
from repro.replay.log import (
    EV_ANCHOR,
    EV_BEGIN,
    EV_CLOCK,
    EV_END,
    EV_INPUT,
    EV_RECOVER,
    EV_RNG,
    EV_SCHED,
    EV_SIGNAL,
    EV_SOCKET,
    FP_LOG_APPEND,
    EventLog,
    ReplayError,
    event_name,
)

#: Clock advances folded into one EV_CLOCK record.
DEFAULT_CLOCK_BATCH = 64

_DELTA = struct.Struct("<q")


class _NullTap:
    """Shared inert tap: every site method is a no-op."""

    active = False

    def __bool__(self):
        return False

    def clock(self, delta_us, now_us):
        pass

    def signal(self, pid, signum, now_us, acted):
        pass

    def socket(self, app, proto, local, remote, internal):
        pass

    def sched(self, owner, unit, **extra):
        pass

    def rng(self, app, op, crc, nbytes):
        pass

    def input_event(self, kind, detail):
        pass

    def anchor(self, checkpoint_id, timestamp_us, framebuffer_sha1,
               checkpoint_fp):
        pass

    def recover_mark(self):
        return {}

    def close(self, clock_us=None):
        pass

    def bind_faults(self, faults):
        pass

    def bind_telemetry(self, metrics):
        pass


NULL_TAP = _NullTap()


def resolve_tap(tap):
    """``tap`` if given, else the shared no-op tap (the
    ``resolve_telemetry`` pattern)."""
    return tap if tap is not None else NULL_TAP


class _TapBase:
    """Shared clock batching + canonical event construction.

    Both active taps must build *identical* event data from identical
    inputs — the lockstep comparison depends on it — so every site
    method lives here and funnels through :meth:`emit`; subclasses
    implement only ``_emit`` (append vs verify).
    """

    active = True

    def __init__(self, clock_batch=DEFAULT_CLOCK_BATCH):
        self._clock_batch = max(1, int(clock_batch))
        self._clock_n = 0
        self._clock_crc = 0
        self._clock_now = 0
        self._closed = False

    # -------------------------------------------------------------- #
    # Clock batching

    def clock(self, delta_us, now_us):
        self._clock_n += 1
        self._clock_crc = zlib.crc32(_DELTA.pack(int(delta_us)),
                                     self._clock_crc)
        self._clock_now = int(now_us)
        if self._clock_n >= self._clock_batch:
            self._emit_clock()

    def _emit_clock(self):
        data = {"n": self._clock_n, "crc": self._clock_crc,
                "now_us": self._clock_now}
        self._clock_n = 0
        self._clock_crc = 0
        self._emit(EV_CLOCK, data)

    def _flush_clock(self):
        if self._clock_n:
            self._emit_clock()

    def _discard_clock(self):
        """Drop a partial batch (crash recovery: those advances died
        with the crash; the replay side leaves its partial batch
        unflushed symmetrically)."""
        self._clock_n = 0
        self._clock_crc = 0

    # -------------------------------------------------------------- #
    # Sites (canonical event data lives here, nowhere else)

    def signal(self, pid, signum, now_us, acted):
        self.emit(EV_SIGNAL, {"pid": int(pid), "signum": int(signum),
                              "now_us": int(now_us), "acted": bool(acted)})

    def socket(self, app, proto, local, remote, internal):
        self.emit(EV_SOCKET, {"app": app, "proto": proto, "local": local,
                              "remote": remote, "internal": bool(internal)})

    def sched(self, owner, unit, **extra):
        data = {"owner": owner, "unit": int(unit)}
        data.update(extra)
        self.emit(EV_SCHED, data)

    def rng(self, app, op, crc, nbytes):
        self.emit(EV_RNG, {"app": app, "op": op, "crc": int(crc),
                           "nbytes": int(nbytes)})

    def input_event(self, kind, detail):
        self.emit(EV_INPUT, {"kind": kind, "detail": detail})

    def anchor(self, checkpoint_id, timestamp_us, framebuffer_sha1,
               checkpoint_fp):
        self.emit(EV_ANCHOR, {"checkpoint_id": int(checkpoint_id),
                              "timestamp_us": int(timestamp_us),
                              "framebuffer_sha1": framebuffer_sha1,
                              "checkpoint_fp": checkpoint_fp})

    def close(self, clock_us=None):
        """End of a clean recording (or of the replay of one)."""
        if self._closed:
            return
        self._closed = True
        data = {} if clock_us is None else {"clock_us": int(clock_us)}
        self.emit(EV_END, data)

    def emit(self, etype, data):
        """One non-clock event: flush any pending clock batch first so
        the stream interleaving is canonical."""
        self._flush_clock()
        self._emit(etype, data)


class RecordingTap(_TapBase):
    """Record mode: every site event is appended to the
    :class:`EventLog`.

    The constructor writes ``EV_BEGIN`` (seq 0) carrying the stream
    format, the clock batch size, and caller metadata — for scenario
    recordings that is enough for :func:`repro.replay.replayer.replay`
    to rebuild the driver without any side channel.
    """

    def __init__(self, meta=None, log=None,
                 clock_batch=DEFAULT_CLOCK_BATCH):
        super().__init__(clock_batch)
        self.log = log if log is not None else EventLog()
        begin = {"format": 1, "clock_batch": self._clock_batch}
        if meta:
            begin.update(meta)
        self.log.append(EV_BEGIN, begin)
        self._m_anchors = None

    def bind_faults(self, faults):
        self.log.bind_faults(faults)

    def bind_telemetry(self, metrics):
        self.log.bind_telemetry(metrics)
        self._m_anchors = metrics.counter("replay.anchors")

    def _emit(self, etype, data):
        self.log.append(etype, data)
        if etype == EV_ANCHOR and self._m_anchors is not None:
            self._m_anchors.inc()

    def recover_mark(self):
        """Crash recovery for the event log itself: discard the partial
        clock batch (those advances died with the crash), truncate the
        torn tail, and append an ``EV_RECOVER`` barrier so later replays
        verify exactly the surviving prefix."""
        self._discard_clock()
        report = self.log.recover()
        self.log.append(EV_RECOVER, dict(report))
        return report

    def getvalue(self):
        return self.log.getvalue()


class ReplayDivergence:
    """The first event where re-execution disagreed with the recording."""

    __slots__ = ("seq", "expected_type", "expected_data", "actual_type",
                 "actual_data")

    def __init__(self, seq, expected_type, expected_data, actual_type,
                 actual_data):
        self.seq = seq
        self.expected_type = expected_type
        self.expected_data = expected_data
        self.actual_type = actual_type
        self.actual_data = actual_data

    @property
    def site(self):
        """The nondeterminism site that diverged (the event type name of
        what the replay actually produced)."""
        return event_name(self.actual_type)

    def to_dict(self):
        return {
            "seq": self.seq,
            "site": self.site,
            "expected": {"type": event_name(self.expected_type),
                         "data": self.expected_data},
            "actual": {"type": event_name(self.actual_type),
                       "data": self.actual_data},
        }

    def describe(self):
        return (
            "replay diverged at seq %d (site %s):\n"
            "  expected: %s %r\n"
            "  actual:   %s %r"
            % (self.seq, self.site,
               event_name(self.expected_type), self.expected_data,
               event_name(self.actual_type), self.actual_data)
        )

    def __repr__(self):
        return "ReplayDivergence(seq=%d, site=%s)" % (self.seq, self.site)


class DivergenceAbort(BaseException):
    """Stops the replayed execution at the first divergent event.

    Derives from :class:`BaseException` so blanket ``except Exception``
    handlers in intermediate layers cannot swallow the verdict; the
    replayer catches it and turns it into the report.
    """

    def __init__(self, divergence):
        super().__init__(divergence.describe())
        self.divergence = divergence


class VerifyingTap(_TapBase):
    """Replay mode: lockstep comparison against a recorded event list.

    ``events`` is the decoded log with ``EV_BEGIN`` stripped and
    truncated at the first ``EV_RECOVER`` (the replayer prepares this).
    With ``from_checkpoint`` set, the tap fast-forwards silently until
    its own execution reaches the anchor with that checkpoint id,
    verifies it against the logged anchor, and goes lockstep from there
    — anchor-synchronized verification rather than state restoration,
    which a fully deterministic substrate makes equivalent and cheap.

    The fault plan bound here is consulted (``replay.log.append``) once
    per verified event even though nothing is written: the recording run
    checked it once per appended event, and replaying a faulted run
    faithfully requires the plan's hit counters and RNG to evolve
    identically.
    """

    def __init__(self, events, from_checkpoint=None,
                 clock_batch=DEFAULT_CLOCK_BATCH, faults=None):
        super().__init__(clock_batch)
        self.faults = resolve_faults(faults)
        self._events = list(events)
        self.divergence = None
        self.events_verified = 0
        self.anchors_verified = 0
        self.log_exhausted = False
        self._m_verified = None
        self.from_checkpoint = from_checkpoint
        if from_checkpoint is None:
            self._armed = True
            self._cursor = 0
            self.window_start = 0
        else:
            self._armed = False
            self._cursor = self._find_anchor(from_checkpoint)
            self.window_start = self._cursor

    def _find_anchor(self, checkpoint_id):
        for index, event in enumerate(self._events):
            if (event.etype == EV_ANCHOR
                    and event.data.get("checkpoint_id") == checkpoint_id):
                return index
        have = sorted(event.data["checkpoint_id"] for event in self._events
                      if event.etype == EV_ANCHOR)
        raise ReplayError(
            "no anchor for checkpoint %r in the event log (anchored: %s)"
            % (checkpoint_id, have or "none"))

    def bind_faults(self, faults):
        self.faults = resolve_faults(faults)

    def bind_telemetry(self, metrics):
        self._m_verified = metrics.counter("replay.events_verified")

    @property
    def cursor(self):
        """Index of the next unverified event."""
        return self._cursor

    @property
    def complete(self):
        """Every logged event in the verification window was re-derived
        and matched."""
        return self.divergence is None and self._cursor >= len(self._events)

    # -------------------------------------------------------------- #

    def clock(self, delta_us, now_us):
        if not self._armed or self.divergence is not None:
            return
        super().clock(delta_us, now_us)

    def emit(self, etype, data):
        if not self._armed or self.divergence is not None:
            return
        self._flush_clock()
        self._emit(etype, data)

    def anchor(self, checkpoint_id, timestamp_us, framebuffer_sha1,
               checkpoint_fp):
        if not self._armed and self.divergence is None:
            if checkpoint_id != self.from_checkpoint:
                return
            # Reached the requested anchor: verify it against the logged
            # one and go lockstep for the suffix.
            self._discard_clock()
            self._armed = True
        super().anchor(checkpoint_id, timestamp_us, framebuffer_sha1,
                       checkpoint_fp)

    def recover_mark(self):
        # Replays never recover the (absent) log; keep the surface.
        return {}

    def _emit(self, etype, data):
        # Mirror the recording side's per-append fault check so a
        # re-armed plan fires at the same execution points; transient IO
        # faults were absorbed by the recorder's retry, crashes
        # propagate exactly like the original death.
        try:
            self.faults.check(FP_LOG_APPEND)
        except InjectedFault:
            pass
        if self._cursor >= len(self._events):
            # The recording ends here (crash-truncated prefix); the rest
            # of the execution is beyond the log — nothing to verify.
            self.log_exhausted = True
            return
        expected = self._events[self._cursor]
        if expected.etype != etype or expected.data != data:
            self.divergence = ReplayDivergence(
                expected.seq, expected.etype, expected.data, etype, data)
            raise DivergenceAbort(self.divergence)
        self._cursor += 1
        self.events_verified += 1
        if self._m_verified is not None:
            self._m_verified.inc()
        if etype == EV_ANCHOR:
            self.anchors_verified += 1
