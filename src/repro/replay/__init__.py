"""Deterministic execution record/replay (rr-style) for vex sessions.

Record every nondeterministic input crossing the vex boundary into an
:class:`~repro.replay.log.EventLog`; replay re-executes the same script
on a fresh session and verifies, in lockstep, that every event — up to
and including framebuffer hashes and checkpoint fingerprints at every
anchor — re-derives bit-identically.  The first mismatch is reported as
a :class:`~repro.replay.tap.ReplayDivergence` naming the exact sequence
number and site.

This package stays import-light (no desktop/workload imports at module
scope): the vex kernel and session bind taps from here.
"""

from repro.replay.log import (
    EV_ANCHOR,
    EV_BEGIN,
    EV_CLOCK,
    EV_END,
    EV_INPUT,
    EV_RECOVER,
    EV_RNG,
    EV_SCHED,
    EV_SIGNAL,
    EV_SOCKET,
    FP_LOG_APPEND,
    STREAM_KIND_REPLAY,
    EventLog,
    ReplayError,
    ReplayEvent,
    event_name,
    read_events,
    write_events,
)
from repro.replay.tap import (
    DEFAULT_CLOCK_BATCH,
    NULL_TAP,
    DivergenceAbort,
    RecordingTap,
    ReplayDivergence,
    VerifyingTap,
    resolve_tap,
)
from repro.replay.replayer import (
    RecordedScenario,
    ReplayReport,
    anchor_ids,
    assert_replays_clean,
    prepare_events,
    record_scenario,
    replay,
    scenario_driver,
)

__all__ = [
    "EV_ANCHOR", "EV_BEGIN", "EV_CLOCK", "EV_END", "EV_INPUT",
    "EV_RECOVER", "EV_RNG", "EV_SCHED", "EV_SIGNAL", "EV_SOCKET",
    "FP_LOG_APPEND", "STREAM_KIND_REPLAY", "EventLog", "ReplayError",
    "ReplayEvent", "event_name", "read_events", "write_events",
    "DEFAULT_CLOCK_BATCH", "NULL_TAP", "DivergenceAbort", "RecordingTap",
    "ReplayDivergence", "VerifyingTap", "resolve_tap",
    "RecordedScenario", "ReplayReport", "anchor_ids",
    "assert_replays_clean", "prepare_events", "record_scenario", "replay",
    "scenario_driver",
]
