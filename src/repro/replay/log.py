"""The execution event log: every nondeterministic input, as TLV records.

rr's deployability insight (PAPERS.md: "Engineering Record And Replay For
Deployability") is that a recording needs only the *nondeterministic
inputs* — everything else is cheaper to re-derive by re-execution.  In
this reproduction the vex substrate is deterministic by construction, so
the recorded inputs double as *assertions*: replay re-executes the same
scripted workload on a fresh session and checks, in lockstep, that every
event crossing the nondeterminism boundary — clock advances, signal
deliveries, socket opens, scheduler picks, workload RNG draws, viewer
input — re-derives bit-identically.  Any code path that silently breaks
determinism (the invariant the fleet isolation suites depend on) becomes
a hard replay divergence naming the first bad event instead of a latent
flake.

The log reuses the v2 CRC-framed TLV codec from :mod:`repro.common.serial`
(one stream kind per artifact, checksum trailer per record), so a crash
mid-append leaves a detectable torn tail, recovered exactly like the
display log: truncate to the longest valid prefix.  Payloads are compact
sorted-key JSON of ``[seq, data]``; the embedded sequence number makes a
divergence report stable even when the byte offsets move.

Event taxonomy (what is *logged*; everything else is re-derived):

========== ==========================================================
EV_BEGIN   stream metadata: format, clock batch, scenario (replayer
           rebuilds the driver from this), always seq 0
EV_CLOCK   a batch of virtual-clock advances: count + rolling CRC-32
           of the packed deltas + the clock after the last one
EV_SIGNAL  one kernel signal delivery (pid, signum, time, acted)
EV_SOCKET  one application socket open (proto, endpoints)
EV_SCHED   one scheduler decision (workload unit dispatch, or a fleet
           pick)
EV_RNG     one workload RNG consumption (app, op, CRC-32 of the drawn
           bytes)
EV_INPUT   one viewer input routed to the focused app
EV_ANCHOR  one checkpoint: id, timestamp, framebuffer SHA-1, stored
           frame fingerprint — the bit-identity gate, and the resume
           point for ``--from-checkpoint``
EV_RECOVER crash-recovery barrier: the log's torn tail was truncated
           here; replay verifies the prefix before it and stops
EV_END     clean end of recording (final virtual clock)
========== ==========================================================
"""

import json

from repro.common.errors import DejaViewError
from repro.common.faults import InjectedCrash, InjectedFault, resolve_faults
from repro.common.serial import RecordWriter, scan_valid_prefix

#: Stream-kind header field for replay event logs.
STREAM_KIND_REPLAY = 0x4EE1

#: The event log's failpoint: fires in :meth:`EventLog.append` after the
#: record is encoded but before it lands (crash leaves a torn TLV event
#: at the log tail).
FP_LOG_APPEND = "replay.log.append"

EV_BEGIN = 0x01
EV_CLOCK = 0x02
EV_SIGNAL = 0x03
EV_SOCKET = 0x04
EV_SCHED = 0x05
EV_RNG = 0x06
EV_INPUT = 0x07
EV_ANCHOR = 0x08
EV_RECOVER = 0x09
EV_END = 0x0A

EV_NAMES = {
    EV_BEGIN: "begin",
    EV_CLOCK: "clock",
    EV_SIGNAL: "signal",
    EV_SOCKET: "socket",
    EV_SCHED: "sched",
    EV_RNG: "rng",
    EV_INPUT: "input",
    EV_ANCHOR: "anchor",
    EV_RECOVER: "recover",
    EV_END: "end",
}


def event_name(etype):
    """Human name of an event tag (unknown tags print as ``ev#N``)."""
    return EV_NAMES.get(etype, "ev#%d" % etype)


class ReplayError(DejaViewError):
    """A replay request could not be satisfied (bad log, missing anchor,
    no driver)."""


class ReplayEvent:
    """One decoded event: ``(seq, etype, data)`` plus its byte offset."""

    __slots__ = ("seq", "etype", "data", "offset")

    def __init__(self, seq, etype, data, offset=None):
        self.seq = seq
        self.etype = etype
        self.data = data
        self.offset = offset

    @property
    def type_name(self):
        return event_name(self.etype)

    def to_dict(self):
        return {"seq": self.seq, "type": self.type_name, "data": self.data}

    def __repr__(self):
        return "ReplayEvent(seq=%d, %s, %r)" % (
            self.seq, self.type_name, self.data)


def encode_event(seq, data):
    """Canonical payload bytes for one event (sorted keys, so the byte
    encoding is insertion-order independent — the golden fixture relies
    on this)."""
    return json.dumps([seq, data], separators=(",", ":"),
                      sort_keys=True).encode("utf-8")


def decode_event(etype, payload, offset=None):
    seq, data = json.loads(payload.decode("utf-8"))
    return ReplayEvent(seq, etype, data, offset)


class EventLog:
    """Append side of the execution event log.

    Framing, torn-tail semantics, and recovery mirror the display
    command log: a crash mid-append leaves a torn record that
    :meth:`recover` (or :meth:`resume`, for a reopened stream) truncates
    away, so the surviving prefix always parses and checksums clean.
    """

    def __init__(self, fileobj=None, faults=None):
        self._writer = RecordWriter(fileobj, kind=STREAM_KIND_REPLAY)
        self.faults = resolve_faults(faults)
        self.next_seq = 0
        self._m_events = None
        self._m_bytes = None

    def bind_faults(self, faults):
        """Route appends through a fault plan (the ``replay.log.append``
        site)."""
        self.faults = resolve_faults(faults)

    def bind_telemetry(self, metrics):
        self._m_events = metrics.counter("replay.events")
        self._m_bytes = metrics.counter("replay.log_bytes")

    @property
    def bytes_written(self):
        return self._writer.bytes_written

    @property
    def event_count(self):
        """Events appended so far (== the next event's sequence number)."""
        return self.next_seq

    def append(self, etype, data):
        """Append one event; returns the :class:`ReplayEvent` written.

        An injected crash tears the in-flight record (header plus partial
        payload, no checksum) before re-raising — exactly what dying
        mid-``write`` leaves on disk.  An injected transient IO fault
        models a retried journal write: the event still lands.
        """
        payload = encode_event(self.next_seq, data)
        try:
            self.faults.check(FP_LOG_APPEND)
        except InjectedCrash:
            self._writer.write_torn(etype, payload)
            raise
        except InjectedFault:
            pass  # transient journal write error: retried, the event lands
        offset = self._writer.write(etype, payload)
        event = ReplayEvent(self.next_seq, etype, data, offset)
        self.next_seq += 1
        if self._m_events is not None:
            self._m_events.inc()
            self._m_bytes.inc(self._writer.bytes_written - offset)
        return event

    def getvalue(self):
        return self._writer.getvalue()

    def recover(self):
        """Post-crash recovery: truncate a torn tail in place.

        Returns ``{"torn_bytes_dropped", "events"}``; the sequence
        counter rewinds to just past the last intact event so appends
        continue contiguously.
        """
        end, records = scan_valid_prefix(self.getvalue(),
                                         expect_kind=STREAM_KIND_REPLAY)
        dropped = 0
        if self._writer.bytes_written > end:
            dropped = self._writer.truncate_to(end)
        self.next_seq = len(records)
        return {"torn_bytes_dropped": dropped, "events": len(records)}

    @classmethod
    def resume(cls, fileobj, faults=None):
        """Reopen a (possibly torn) log for appending —
        :meth:`RecordWriter.resume` semantics.  Returns ``(log,
        dropped_bytes, event_count)``."""
        writer, dropped, count = RecordWriter.resume(
            fileobj, expect_kind=STREAM_KIND_REPLAY)
        log = cls.__new__(cls)
        log._writer = writer
        log.faults = resolve_faults(faults)
        log.next_seq = count
        log._m_events = None
        log._m_bytes = None
        return log, dropped, count


def read_events(data):
    """Decode a replay log, tolerating a torn tail.

    Returns ``(events, torn_tail_bytes)`` where ``events`` is the longest
    valid prefix.  Raises :class:`~repro.common.serial.StreamCorrupt`
    only when the stream header itself is unusable.
    """
    end, records = scan_valid_prefix(data, expect_kind=STREAM_KIND_REPLAY)
    torn = max(0, len(data) - end) if isinstance(
        data, (bytes, bytearray, memoryview)) else 0
    events = [decode_event(tag, payload, offset)
              for tag, payload, offset in records]
    return events, torn


def write_events(events, fileobj=None):
    """Re-serialize decoded events into a fresh stream (the mutation
    tests rebuild logs this way); returns the :class:`RecordWriter`."""
    writer = RecordWriter(fileobj, kind=STREAM_KIND_REPLAY)
    for event in events:
        writer.write(event.etype, encode_event(event.seq, event.data))
    return writer


def trim_before_anchor(data, checkpoint_id):
    """Anchor-keyed segment retention: drop every event *before* the
    given checkpoint's ``EV_ANCHOR``, keeping the ``EV_BEGIN`` metadata
    record and the anchored suffix.

    Checkpoint thinning keeps sparse anchors plus the log segment after
    each — once every checkpoint older than an anchor is thinned or
    pruned, the events before that anchor can no longer seed a replay
    anybody needs, and this trims them away.  The retained events keep
    their original sequence numbers, so replaying the trimmed log with
    ``from_checkpoint=checkpoint_id`` verifies the identical suffix.
    Returns ``(trimmed_bytes, events_dropped)``; raises
    :class:`ReplayError` when the log carries no anchor for
    ``checkpoint_id`` (trimming would strand every later tombstone).
    """
    events, _torn = read_events(data)
    begin = [event for event in events[:1] if event.etype == EV_BEGIN]
    body = events[len(begin):]
    start = None
    for index, event in enumerate(body):
        if (event.etype == EV_ANCHOR
                and event.data.get("checkpoint_id") == checkpoint_id):
            start = index
            break
    if start is None:
        raise ReplayError(
            "no anchor for checkpoint %r in log; refusing to trim"
            % (checkpoint_id,))
    writer = write_events(begin + body[start:])
    return writer.getvalue(), start
