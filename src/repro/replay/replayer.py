"""Re-execution with lockstep verification, and the divergence oracle.

The replayer's contract: given the bytes of an event log and a *driver*
(a callable that rebuilds the session and re-runs the same deterministic
script with a tap plugged in), re-execute and verify that every logged
nondeterministic event re-derives bit-identically — framebuffer SHA-1s
and checkpoint fingerprints included, via the ``EV_ANCHOR`` events.  For
scenario recordings made with :func:`record_scenario`, the driver is
rebuilt automatically from the log's ``EV_BEGIN`` metadata; bespoke
scripts (the fault-injection suites) pass their own.

Prefix semantics: a crash-truncated log is a *valid prefix* — replay
verifies every surviving event and ignores execution past the log's end;
conversely, an execution that ends (or crashes) before consuming every
logged event is reported as incomplete.  A log recovered after a crash
carries an ``EV_RECOVER`` barrier; verification covers exactly the
events before the first barrier.  Replaying a *faulted* recording
faithfully requires re-injecting the same faults: pass
``faults=plan.fresh_copy()`` and the re-armed plan fires at the same
execution points (hit counters and the seeded RNG evolve identically,
because the verifying tap mirrors the recorder's per-append failpoint
check).
"""

from dataclasses import dataclass, field

from repro.common.faults import InjectedCrash
from repro.replay.log import (
    EV_ANCHOR,
    EV_BEGIN,
    EV_RECOVER,
    ReplayError,
    read_events,
)
from repro.replay.tap import (
    DEFAULT_CLOCK_BATCH,
    DivergenceAbort,
    RecordingTap,
    VerifyingTap,
)


@dataclass
class ReplayReport:
    """The verdict of one replay."""

    ok: bool = False
    divergence: object = None
    events_total: int = 0
    """Logged events in the verification window (after ``EV_BEGIN``
    stripping, recovery-barrier truncation, and anchor fast-forward)."""
    events_verified: int = 0
    anchors_total: int = 0
    anchors_verified: int = 0
    stopped_at_recover: bool = False
    """The log carried a crash-recovery barrier; verification covered
    the surviving prefix before it."""
    replay_crashed: bool = False
    """The re-executed run died on an injected crash (expected when
    replaying a faulted recording with its fault plan re-armed)."""
    crash_site: str = None
    log_exhausted: bool = False
    """Re-execution continued past the end of the (truncated) log."""
    torn_tail_bytes: int = 0
    from_checkpoint: object = None
    meta: dict = field(default_factory=dict)

    def to_dict(self):
        return {
            "ok": self.ok,
            "divergence": (self.divergence.to_dict()
                           if self.divergence is not None else None),
            "events_total": self.events_total,
            "events_verified": self.events_verified,
            "anchors_total": self.anchors_total,
            "anchors_verified": self.anchors_verified,
            "stopped_at_recover": self.stopped_at_recover,
            "replay_crashed": self.replay_crashed,
            "crash_site": self.crash_site,
            "log_exhausted": self.log_exhausted,
            "torn_tail_bytes": self.torn_tail_bytes,
            "from_checkpoint": self.from_checkpoint,
            "meta": self.meta,
        }

    def describe(self):
        if self.ok:
            lines = ["replay clean: %d/%d events verified, %d/%d anchors"
                     % (self.events_verified, self.events_total,
                        self.anchors_verified, self.anchors_total)]
            if self.from_checkpoint is not None:
                lines.append("fast-forwarded to checkpoint %r anchor"
                             % (self.from_checkpoint,))
            if self.stopped_at_recover:
                lines.append("verified the surviving prefix up to the "
                             "crash-recovery barrier")
            if self.replay_crashed:
                lines.append("re-execution died at %s, exactly like the "
                             "recorded run" % self.crash_site)
            return "\n".join(lines)
        if self.divergence is not None:
            return self.divergence.describe()
        return ("replay incomplete: %d/%d events verified "
                "(re-execution ended early%s)"
                % (self.events_verified, self.events_total,
                   ", crashed at %s" % self.crash_site
                   if self.replay_crashed else ""))


def prepare_events(data):
    """Decode log bytes into the verification window.

    Returns ``(meta, events, torn_tail_bytes, stopped_at_recover)``:
    the ``EV_BEGIN`` metadata (``{}`` if absent), the events with the
    begin record stripped and everything at and after the first
    ``EV_RECOVER`` barrier cut off, the torn-tail byte count, and
    whether a barrier was found.
    """
    events, torn = read_events(data)
    meta = {}
    if events and events[0].etype == EV_BEGIN:
        meta = events[0].data
        events = events[1:]
    stopped = False
    for index, event in enumerate(events):
        if event.etype == EV_RECOVER:
            events = events[:index]
            stopped = True
            break
    return meta, events, torn, stopped


def anchor_ids(data):
    """Checkpoint ids anchored in a log, in recording order."""
    _, events, _, _ = prepare_events(data)
    return [event.data["checkpoint_id"] for event in events
            if event.etype == EV_ANCHOR]


def anchor_index(data):
    """``{checkpoint_id: anchor event data}`` for every ``EV_ANCHOR`` in
    a log — the thinning pass harvests per-instant fingerprints (and the
    set of replayable instants) from this."""
    _, events, _, _ = prepare_events(data)
    return {event.data["checkpoint_id"]: dict(event.data)
            for event in events if event.etype == EV_ANCHOR}


def scenario_driver(meta, faults=None, capture=None):
    """Rebuild the re-execution driver for a :func:`record_scenario`
    recording from its ``EV_BEGIN`` metadata.

    ``faults`` (a fresh copy of the recorded run's plan) is wired into
    the rebuilt session's recording config, so re-execution injects the
    same faults at the same points.  ``capture`` (a dict) receives the
    rebuilt ``session`` and ``dejaview`` before the run starts, so a
    caller that halts re-execution mid-way — replay-based revive — can
    hand the reconstructed state back."""
    scenario = meta.get("scenario")
    if not scenario:
        raise ReplayError(
            "event log carries no scenario metadata; pass an explicit "
            "driver to replay()")

    def driver(tap):
        from repro.desktop.dejaview import DejaView
        from repro.desktop.session import DesktopSession
        from repro.workloads.generator import get_workload

        workload = get_workload(scenario)
        kwargs = {"name": meta.get("name", "desktop")}
        if "width" in meta:
            kwargs["width"] = meta["width"]
        if "height" in meta:
            kwargs["height"] = meta["height"]
        session = DesktopSession(replay_tap=tap, **kwargs)
        config = workload.default_recording()
        if faults is not None:
            config.fault_plan = faults
        dejaview = DejaView(session, config)
        if capture is not None:
            capture["session"] = session
            capture["dejaview"] = dejaview
        workload.run(units=meta.get("units"), session=session,
                     dejaview=dejaview)
        tap.close(session.clock.now_us)

    return driver


def replay(data, driver=None, from_checkpoint=None, faults=None):
    """Re-execute and verify one event log; returns a
    :class:`ReplayReport`.

    ``driver`` is ``driver(tap) -> None``; ``None`` rebuilds a scenario
    driver from the log's metadata.  ``from_checkpoint`` starts
    verification at that checkpoint's anchor (fast-forwarding the
    re-derivation, which is cheap in simulation).  ``faults`` re-injects
    a fault plan into the verifying tap's append-site mirror (see module
    docstring); the driver itself decides whether that plan also reaches
    the rebuilt session's write paths.
    """
    meta, events, torn, stopped = prepare_events(data)
    if driver is None:
        driver = scenario_driver(meta, faults=faults)
    clock_batch = int(meta.get("clock_batch", DEFAULT_CLOCK_BATCH))
    tap = VerifyingTap(events, from_checkpoint=from_checkpoint,
                       clock_batch=clock_batch, faults=faults)
    report = ReplayReport(meta=meta, torn_tail_bytes=torn,
                          stopped_at_recover=stopped,
                          from_checkpoint=from_checkpoint)
    try:
        driver(tap)
    except DivergenceAbort:
        pass
    except InjectedCrash as crash:
        report.replay_crashed = True
        report.crash_site = crash.site
    window = events[tap.window_start:]
    report.events_total = len(window)
    report.anchors_total = sum(
        1 for event in window if event.etype == EV_ANCHOR)
    report.events_verified = tap.events_verified
    report.anchors_verified = tap.anchors_verified
    report.divergence = tap.divergence
    report.log_exhausted = tap.log_exhausted
    report.ok = tap.complete
    return report


class AnchorReached(BaseException):
    """Control flow for :func:`replay_to_checkpoint`: the stop-at tap
    verified the target checkpoint's anchor, so re-execution halts with
    the rebuilt session frozen at exactly that instant.  A
    ``BaseException`` so workload ``except Exception`` handlers cannot
    swallow the stop."""

    def __init__(self, anchor):
        super().__init__("reached anchor of checkpoint %r"
                         % (anchor.get("checkpoint_id"),))
        self.anchor = anchor


class StopAtAnchorTap(VerifyingTap):
    """A verifying tap that halts re-execution at a target anchor.

    Fast-forwards like :class:`VerifyingTap` (``from_checkpoint``
    names the surviving anchor replay seeds from), verifies every event
    in lockstep, and the moment the *target* checkpoint's anchor event
    re-derives bit-identically raises :class:`AnchorReached`.  The
    re-derived anchor data lands in :attr:`reached`."""

    def __init__(self, events, target_checkpoint, from_checkpoint=None,
                 clock_batch=DEFAULT_CLOCK_BATCH, faults=None):
        super().__init__(events, from_checkpoint=from_checkpoint,
                         clock_batch=clock_batch, faults=faults)
        self.target_checkpoint = target_checkpoint
        self.reached = None

    def anchor(self, checkpoint_id, timestamp_us, framebuffer_sha1,
               checkpoint_fp):
        super().anchor(checkpoint_id, timestamp_us, framebuffer_sha1,
                       checkpoint_fp)
        if (self._armed and self.divergence is None
                and checkpoint_id == self.target_checkpoint):
            self.reached = {
                "checkpoint_id": int(checkpoint_id),
                "timestamp_us": int(timestamp_us),
                "framebuffer_sha1": framebuffer_sha1,
                "checkpoint_fp": checkpoint_fp,
            }
            raise AnchorReached(self.reached)


@dataclass
class ReplayedState:
    """What :func:`replay_to_checkpoint` hands back: the re-executed
    session frozen at the target instant (``ok`` when the target's
    anchor verified), plus the verification figures."""

    reached: dict = None
    session: object = None
    dejaview: object = None
    events_verified: int = 0
    anchors_verified: int = 0
    divergence: object = None
    replay_crashed: bool = False
    crash_site: str = None
    anchor_id: object = None
    replay_us: int = 0
    """Virtual time re-executed between the seed anchor and the target
    — the replay distance a thinned revive pays for."""
    meta: dict = field(default_factory=dict)

    @property
    def ok(self):
        return self.reached is not None

    def describe(self):
        if self.ok:
            return ("replayed to checkpoint %d (+%dus from anchor %r, "
                    "%d events verified)"
                    % (self.reached["checkpoint_id"], self.replay_us,
                       self.anchor_id, self.events_verified))
        if self.divergence is not None:
            return self.divergence.describe()
        if self.replay_crashed:
            return ("replay crashed at %s before reaching the target "
                    "anchor" % self.crash_site)
        return ("re-execution ended after %d verified events without "
                "reaching the target anchor" % self.events_verified)


def replay_to_checkpoint(data, checkpoint_id, from_checkpoint=None,
                         driver_factory=None, faults=None):
    """Re-execute a recording up to one checkpoint's instant.

    The replay-revive core: drives the recording's deterministic script
    forward — fast-forwarding to ``from_checkpoint``'s anchor when
    given, then in lockstep — and stops the moment ``checkpoint_id``'s
    anchor event re-derives bit-identically.  Returns a
    :class:`ReplayedState` carrying the rebuilt session/dejaview (their
    storage holds a freshly re-created, fingerprint-verified copy of the
    target checkpoint) and the re-derived anchor data.

    ``driver_factory`` is ``factory(meta, capture) -> driver`` for
    recordings without scenario metadata; the default rebuilds the
    scenario driver and captures its session.
    """
    meta, events, _torn, _stopped = prepare_events(data)
    capture = {}
    if driver_factory is None:
        driver = scenario_driver(meta, faults=faults, capture=capture)
    else:
        driver = driver_factory(meta, capture)
    clock_batch = int(meta.get("clock_batch", DEFAULT_CLOCK_BATCH))
    tap = StopAtAnchorTap(events, checkpoint_id,
                          from_checkpoint=from_checkpoint,
                          clock_batch=clock_batch, faults=faults)
    result = ReplayedState(meta=meta, anchor_id=from_checkpoint)
    try:
        driver(tap)
    except AnchorReached:
        pass
    except DivergenceAbort:
        pass
    except InjectedCrash as crash:
        result.replay_crashed = True
        result.crash_site = crash.site
    result.reached = tap.reached
    result.session = capture.get("session")
    result.dejaview = capture.get("dejaview")
    result.events_verified = tap.events_verified
    result.anchors_verified = tap.anchors_verified
    result.divergence = tap.divergence
    if tap.reached is not None:
        start_us = 0
        if from_checkpoint is not None and tap.window_start < len(events):
            start_us = events[tap.window_start].data.get("timestamp_us", 0)
        result.replay_us = max(
            0, tap.reached["timestamp_us"] - start_us)
    return result


@dataclass
class RecordedScenario:
    """What :func:`record_scenario` hands back."""

    tap: RecordingTap
    session: object
    dejaview: object
    run: object = None
    crashed: object = None

    @property
    def log_bytes(self):
        return self.tap.getvalue()


def record_scenario(scenario, units=None, recording=None,
                    session_kwargs=None, page_cas=None,
                    clock_batch=DEFAULT_CLOCK_BATCH):
    """Run a registered scenario with recording enabled.

    Returns a :class:`RecordedScenario`; if an injected crash killed the
    run mid-way it is caught and stored (``crashed``), with the torn
    event log still reachable through the tap — exactly the state
    :meth:`DejaView.recover` then repairs.

    The ``EV_BEGIN`` metadata captures scenario name, units, and session
    geometry, which is everything :func:`scenario_driver` needs to
    rebuild the run; custom ``session_kwargs`` beyond name/width/height
    (costs, clocks) are not serialized — replay such recordings with an
    explicit driver.
    """
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession
    from repro.workloads.generator import get_workload

    workload = get_workload(scenario)
    kwargs = dict(session_kwargs or {})
    meta = {
        "scenario": scenario,
        "units": units if units is not None else workload.default_units,
        "name": kwargs.get("name", "desktop"),
    }
    for dim in ("width", "height"):
        if dim in kwargs:
            meta[dim] = kwargs[dim]
    tap = RecordingTap(meta=meta, clock_batch=clock_batch)
    kwargs["replay_tap"] = tap
    session = DesktopSession(**kwargs)
    config = recording if recording is not None \
        else workload.default_recording()
    dejaview = DejaView(session, config, page_cas=page_cas)
    recorded = RecordedScenario(tap=tap, session=session, dejaview=dejaview)
    try:
        recorded.run = workload.run(units=units, session=session,
                                    dejaview=dejaview)
        tap.close(session.clock.now_us)
    except InjectedCrash as crash:
        recorded.crashed = crash
    return recorded


def assert_replays_clean(data, driver=None, from_checkpoint=None,
                         faults=None):
    """Pytest-facing oracle: replay and raise ``AssertionError`` with
    the formatted divergence (or incompleteness) unless the replay is
    clean.  Returns the :class:`ReplayReport` for further assertions."""
    report = replay(data, driver=driver, from_checkpoint=from_checkpoint,
                    faults=faults)
    assert report.ok, report.describe()
    return report
