#!/usr/bin/env python3
"""Tabbed time travel with a cross-session clipboard (section 2).

"DejaView extends this concept by allowing simultaneous revival of multiple
past sessions, that can run side-by-side independently of each other and of
the current session.  The user can copy and paste content amongst her
active sessions."

This example records three versions of a document, opens two revived tabs
at different moments, pastes a lost paragraph from the oldest version back
into the live session, and shows the tabs diverging independently.
"""

from repro import DejaView, DesktopSession, SessionManager
from repro.common.units import seconds
from repro.display.commands import Region


def main():
    session = DesktopSession()
    dejaview = DejaView(session)
    manager = SessionManager(session, dejaview)
    editor = session.launch("editor")
    editor.focus()

    moments = []
    versions = [
        b"v1: intro + the crucial paragraph about caching",
        b"v2: intro rewritten, crucial paragraph deleted",
        b"v3: conclusions added",
    ]
    for i, version in enumerate(versions):
        editor.draw_fill(Region(0, 0, session.width, session.height),
                         0x101010 * (i + 1))
        editor.write_file("/home/user/thesis.txt", version)
        editor.show_text("editing thesis %s" % version.decode()[:2])
        session.clock.advance_us(seconds(2))  # the edit takes a moment
        dejaview.tick()
        moments.append(session.clock.now_us)
        session.clock.advance_us(seconds(60))

    print("live document:",
          session.fs.read_file("/home/user/thesis.txt").decode())

    # Open two past versions side by side.
    tab_v1 = manager.take_me_back(moments[0])
    tab_v2 = manager.take_me_back(moments[1])
    print("open tabs:", [tab.name for tab in manager.tabs])
    print("tab[v1] document:",
          tab_v1.mount.read_file("/home/user/thesis.txt").decode())
    print("tab[v2] document:",
          tab_v2.mount.read_file("/home/user/thesis.txt").decode())

    # Rescue the lost paragraph: copy from the v1 tab, paste live.
    manager.copy_from_revived(tab_v1, "/home/user/thesis.txt")
    manager.paste_into_live_file("/home/user/recovered_paragraph.txt")
    print("recovered into live session:",
          session.fs.read_file("/home/user/recovered_paragraph.txt").decode())

    # The tabs run independently and can diverge.
    tab_v1.mount.write_file("/home/user/thesis.txt", b"v1-branch edits")
    print("tab[v1] diverged:",
          tab_v1.mount.read_file("/home/user/thesis.txt").decode())
    print("tab[v2] unaffected:",
          tab_v2.mount.read_file("/home/user/thesis.txt").decode())

    # Done with v2; close its tab.
    manager.close(tab_v2)
    print("tabs after close:", [tab.name for tab in manager.tabs])


if __name__ == "__main__":
    main()
