#!/usr/bin/env python3
"""Recovering work that was never saved (sections 5.1.1 and 5.1.2).

Two recovery stories the paper's file system design enables:

1. **The deleted file** — a process is checkpointed while using
   ``/tmp/foo``; the file is later deleted.  Reviving the checkpoint must
   bring the file back, because the log-structured file system snapshot
   bound to the checkpoint still reaches it.

2. **The open-but-unlinked scratch file** — an application unlinks its
   scratch file while holding it open (a classic editor pattern).  The
   checkpoint engine *relinks* the inode into a hidden directory before
   the snapshot, so the content survives without being copied into the
   checkpoint image, and the revived process gets its unlinked-open file
   descriptor back.
"""

from repro import DejaView, DesktopSession
from repro.common.units import seconds
from repro.fs.lfs import RELINK_DIR


def main():
    session = DesktopSession()
    dejaview = DejaView(session)
    clock = session.clock
    editor = session.launch("editor")

    # Story 1: a normal file, later deleted.
    editor.write_file("/tmp/foo", b"important scratch data")

    # Story 2: an open-but-unlinked scratch file.
    editor.write_file("/tmp/editor-swap", b"unsaved buffer contents")
    handle, fd_entry = editor.open_file("/tmp/editor-swap")
    editor.unlink_open_file("/tmp/editor-swap", fd_entry)
    print("live session: /tmp/editor-swap unlinked but still open; "
          "fd reads %r" % handle.read().decode())

    editor.show_text("editing session with unsaved work")
    dejaview.tick()
    t_checkpoint = clock.now_us
    clock.advance_us(seconds(10))

    # Disaster: the scratch file is deleted too.
    session.fs.unlink("/tmp/foo")
    dejaview.tick()
    print("live session: /tmp/foo deleted ->",
          session.fs.exists("/tmp/foo"))

    # Take me back to just after the checkpoint.
    revived = dejaview.take_me_back(t_checkpoint)
    mount = revived.container.mount

    # Story 1 resolution.
    print("revived: /tmp/foo restored ->",
          mount.read_file("/tmp/foo").decode())

    # Story 2 resolution: the fd is back, marked unlinked, and the hidden
    # relink entry has been removed again.
    clone = revived.container.process_by_vpid(editor.process.vpid)
    restored_fd = clone.open_files[fd_entry.fd]
    print("revived: scratch fd %d restored, unlinked=%s, path=%s" % (
        restored_fd.fd, restored_fd.unlinked, restored_fd.path))
    relink_entries = [
        name for name in mount.listdir(RELINK_DIR)
    ] if mount.exists(RELINK_DIR) else []
    print("revived: hidden relink directory is empty again ->",
          relink_entries == [])
    # The scratch file is not visible at its old path (it was unlinked at
    # checkpoint time), exactly matching the checkpointed state.
    print("revived: /tmp/editor-swap still unlinked ->",
          not mount.exists("/tmp/editor-swap"))


if __name__ == "__main__":
    main()
