#!/usr/bin/env python3
"""Tuning the checkpoint policy (section 5.1.3).

The policy's parameters are user-tunable and its rule set is extensible.
This example runs the same interactive desktop workload under four
configurations and compares checkpoint counts and storage growth:

* fixed 1 Hz checkpointing (no policy — the paper's benchmark setting);
* the default policy;
* an aggressive policy (larger activity threshold, slower text rate);
* the default policy extended with the paper's example custom rule:
  "disable checkpoints when the load of the computer rises above a
  certain level".
"""

from repro.checkpoint.policy import PolicyConfig
from repro.common.units import seconds
from repro.desktop.dejaview import RecordingConfig
from repro.workloads import get_workload

UNITS = 240


def run_with(label, config):
    workload = get_workload("desktop")
    run = workload.run(recording=config, units=UNITS)
    dv = run.dejaview
    rates = run.storage_growth_rates()
    taken = dv.checkpoint_count
    print("%-22s checkpoints=%3d  ckpt growth=%.2f MB/s (%.2f gz)" % (
        label, taken, rates["checkpoint"] / 1e6,
        rates["checkpoint_compressed"] / 1e6))
    return run


def run_with_custom_rule():
    """Install a load-shedding rule before the workload starts."""
    from repro.desktop.dejaview import DejaView
    from repro.desktop.session import DesktopSession

    workload = get_workload("desktop")
    session = DesktopSession()
    dv = DejaView(session, RecordingConfig(use_policy=True))
    dv.policy.add_rule(lambda ctx: False if ctx.system_load > 0.9 else None)
    run = workload.run(units=UNITS, session=session, dejaview=dv)
    rates = run.storage_growth_rates()
    print("%-22s checkpoints=%3d  ckpt growth=%.2f MB/s (%.2f gz)" % (
        "policy + load rule", dv.checkpoint_count,
        rates["checkpoint"] / 1e6,
        rates["checkpoint_compressed"] / 1e6))
    return run


def main():
    print("desktop workload, %d one-second ticks:\n" % UNITS)
    run_with("fixed 1 Hz (no policy)", RecordingConfig(use_policy=False))
    default = run_with("default policy", RecordingConfig(use_policy=True))
    aggressive = PolicyConfig(
        low_activity_fraction=0.15,          # skip anything under 15 %
        text_edit_interval_us=seconds(30),   # text checkpoints every 30 s
    )
    run_with("aggressive policy",
             RecordingConfig(use_policy=True, policy_config=aggressive))
    run_with_custom_rule()

    stats = default.dejaview.policy.stats
    print("\ndefault policy decisions: %d taken (%.0f%%), skips by reason:"
          % (stats.total_taken, 100 * stats.taken_fraction()))
    for reason, count in sorted(stats.skipped.items()):
        print("  %-22s %3d (%.0f%% of skips)" % (
            reason, count, 100 * stats.skip_fraction(reason)))


if __name__ == "__main__":
    main()
