#!/usr/bin/env python3
"""The paper's motivating scenario: temporal cross-application search.

Section 4.2: "Consider, for example, a user that is looking for the time
when she started reading a paper, but all she recalls is that a particular
web page was open at the same time."

This example records a research session where a web page about Memex is
open in the browser while a PDF paper is (later) opened in the reader,
annotates a key passage with the combo key, and then:

* finds the exact interval where the paper and the web page were both on
  screen, using a two-clause query with per-application constraints;
* finds the annotated passage via an annotation query;
* revives the desktop at that moment and reads the paper's text out of the
  revived session.
"""

from repro import Clause, DejaView, DesktopSession, Query
from repro.common.units import seconds
from repro.display.commands import Region


def main():
    session = DesktopSession()
    dejaview = DejaView(session)
    clock = session.clock

    firefox = session.launch("firefox")
    reader = session.launch("pdfreader")

    # t=0: browsing the web about Memex.
    firefox.focus()
    firefox.draw_fill(Region(0, 0, 320, 120), 0x3355AA)
    page = firefox.show_text(
        "As We May Think: Vannevar Bush imagines the memex device"
    )
    dejaview.tick()
    clock.advance_us(seconds(30))
    dejaview.tick()

    # t=30: the paper gets opened while the web page is still up.
    reader.focus()
    reader.draw_fill(Region(0, 120, 320, 120), 0xEEEEEE)
    paper = reader.show_text(
        "DejaView: a personal virtual computer recorder. We present a "
        "WYSIWYS record of a desktop computing experience."
    )
    dejaview.tick()
    clock.advance_us(seconds(20))

    # The key passage gets annotated: select + combo key (section 4.4).
    reader.annotate_selection(paper, "WYSIWYS record")
    dejaview.tick()
    clock.advance_us(seconds(20))

    # t=70: the web page is closed; reading continues.
    firefox.remove_text(page)
    dejaview.tick()
    clock.advance_us(seconds(30))
    dejaview.tick()

    # ------------------------------------------------------------------ #
    # "When did I start reading the paper, while that memex page was open?"
    query = Query(
        clauses=(
            Clause(all_of="dejaview recorder", app="pdfreader"),
            Clause(all_of="memex", app="firefox"),
        )
    )
    results = dejaview.search(query, render=False)
    assert results, "the overlap interval must be found"
    overlap = results[0].substream
    print("paper+webpage overlap: %.0fs .. %.0fs (%.0f s long)" % (
        overlap.start_us / 1e6, overlap.end_us / 1e6,
        overlap.duration_us / 1e6))

    # The annotated passage is retrievable on its own.
    annotated = dejaview.search(Query.annotations(), render=False)
    print("annotations found: %d (first snippet: %r)" % (
        len(annotated), annotated[0].snippet[:50]))

    # Revive the desktop at the moment the reading started.
    revived = dejaview.take_me_back(overlap.start_us + seconds(1))
    reader_clone = revived.container.process_by_vpid(reader.process.vpid)
    print("revived at the reading moment: %s running as vpid %d" % (
        reader_clone.name, reader_clone.vpid))
    print("revive took %.0f ms, read %d pages across %d image(s)" % (
        revived.duration_us / 1e3, revived.pages_restored,
        revived.images_accessed))


if __name__ == "__main__":
    main()
