#!/usr/bin/env python3
"""Quickstart: record a tiny desktop session, then search, browse, revive.

Runs in a couple of seconds and exercises the whole public API surface:

1. build a :class:`DesktopSession` and attach the :class:`DejaView`
   recorder;
2. drive a simulated editor through two "chapters" of work;
3. full-text search the record and inspect the result screenshot;
4. browse (seek) the display record to an arbitrary moment;
5. *Take me back*: revive the session as it was mid-way and show that the
   revived file system is the past one.
"""

from repro import DejaView, DesktopSession, Query
from repro.common.units import format_bytes, seconds
from repro.display.commands import Region


def main():
    session = DesktopSession(width=320, height=240)
    dejaview = DejaView(session)
    clock = session.clock

    # --- Chapter 1: notes about project Alpha on a red background. ------
    editor = session.launch("editor")
    editor.focus()
    editor.draw_fill(Region(0, 0, 320, 240), 0xAA1111)
    note = editor.show_text("project alpha: kickoff meeting notes")
    editor.write_file("/home/user/alpha.txt", b"alpha meeting notes v1")
    dejaview.tick()
    t_alpha = clock.now_us
    clock.advance_us(seconds(5))

    # --- Chapter 2: Alpha is renamed Beta; the old file is deleted. ------
    editor.draw_fill(Region(0, 0, 320, 240), 0x11AA11)
    editor.update_text(note, "project beta: renamed, alpha file removed")
    session.fs.unlink("/home/user/alpha.txt")
    dejaview.tick()
    clock.advance_us(seconds(5))
    dejaview.tick()

    # --- Search: where did I see "alpha"? --------------------------------
    results = dejaview.search(Query.keywords("alpha"))
    print("search 'alpha' -> %d result(s)" % len(results))
    for result in results:
        print("  t=%.1fs  snippet=%r" % (result.timestamp_us / 1e6,
                                         result.snippet))
        shot = result.screenshot
        print("  screenshot %dx%d, top-left pixel #%06x" % (
            shot.width, shot.height, int(shot.pixels[0, 0])))

    # --- Browse: PVR-style seek to the alpha moment. ----------------------
    fb, stats = dejaview.browse(t_alpha)
    print("browse t=%.1fs: replayed %d of %d commands, screen #%06x" % (
        t_alpha / 1e6, stats.commands_applied, stats.commands_considered,
        int(fb.pixels[0, 0])))

    # --- Take me back: revive the alpha-era session. ----------------------
    revived = dejaview.take_me_back(t_alpha)
    mount = revived.container.mount
    print("revived session %r in %.0f ms (%d processes)" % (
        revived.container.name, revived.duration_us / 1e3, revived.processes))
    print("  /home/user/alpha.txt exists again:",
          mount.read_file("/home/user/alpha.txt").decode())
    print("  live session still lacks it:",
          not session.fs.exists("/home/user/alpha.txt"))

    report = dejaview.storage_report()
    print("record sizes: display=%s index=%s checkpoints=%s" % (
        format_bytes(report["display"]),
        format_bytes(report["index"]),
        format_bytes(report["checkpoint_uncompressed"])))


if __name__ == "__main__":
    main()
