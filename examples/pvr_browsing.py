#!/usr/bin/env python3
"""PVR-style control of a recorded session (sections 4.1 and 4.3).

Records the full-screen video workload, then exercises every playback
operation the paper describes: skip (seek), play at normal / double /
fastest speed, fast-forward, and rewind — and reports the measured playback
speedups the way Figure 6 does.
"""

from repro.common.clock import VirtualClock
from repro.display.playback import PlaybackEngine
from repro.workloads import run_scenario


def main():
    print("recording the 20-second video scenario...")
    run = run_scenario("video")
    record = run.dejaview.display_record()
    print("record: %.1f s of display, %d commands, %d keyframes, %.1f MB" % (
        record.duration_us / 1e6, record.command_count,
        len(record.timeline), record.total_bytes / 1e6))

    engine = PlaybackEngine(record, clock=VirtualClock())
    start = record.timeline.first_time_us
    end = run.end_us
    middle = (start + end) // 2

    # Skip straight to the middle of the clip.
    fb, stats = engine.seek(middle)
    print("seek to t=%.1fs: %d commands considered, %d applied after "
          "pruning" % (middle / 1e6, stats.commands_considered,
                       stats.commands_applied))

    # Play at various rates.
    for label, kwargs in [
        ("normal speed", {"speed": 1.0}),
        ("2x speed", {"speed": 2.0}),
        ("fastest", {"fastest": True}),
    ]:
        engine = PlaybackEngine(record, clock=VirtualClock())
        _fb, stats = engine.play(start, end, **kwargs)
        print("play %-13s recorded %.1fs in %.2fs -> %.0fx" % (
            label + ":", stats.recorded_duration_us / 1e6,
            stats.playback_duration_us / 1e6, stats.speedup))

    # Fast forward and rewind walk the keyframes.
    engine = PlaybackEngine(record, clock=VirtualClock())
    _fb, _stats, shown = engine.fast_forward(start, end)
    print("fast-forward start->end: %d keyframe(s) flashed" % shown)
    _fb, _stats, shown = engine.rewind(end, middle)
    print("rewind end->middle: %d keyframe(s) flashed" % shown)

    # Repeated visits to one moment hit the LRU keyframe cache.
    engine.seek(middle)
    engine.seek(middle)
    print("keyframe cache: %r" % (engine.cache_stats,))


if __name__ == "__main__":
    main()
