"""Legacy setup shim.

The sandbox this reproduction targets has no network access and no `wheel`
package, so PEP 660 editable installs (`pip install -e .` with build
isolation) cannot build. `python setup.py develop` and
`pip install -e . --no-build-isolation` both work through this shim; all
real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
